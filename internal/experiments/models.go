package experiments

import (
	"fmt"
	"math/rand"

	"mcpaging/internal/core"
	"mcpaging/internal/hassidim"
	"mcpaging/internal/metrics"
	"mcpaging/internal/multiapp"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/workload"
)

func init() {
	register("E14", runE14)
	register("E15", runE15)
	register("E16", runE16)
}

// runE14 — the Hassidim model comparison (Section 2): the paper's model
// is Hassidim's minus scheduling power. Greedy(LRU) in Hassidim's model
// reproduces S_LRU exactly, and the delaying optimum strictly beats the
// no-delay optimum on some instances — the power the paper removes is
// real, quantified here.
func runE14(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E14",
		Title: "Hassidim's scheduler-empowered model vs the paper's model",
		Claim: "Section 2: the paper's model is Hassidim's restricted to never-delay schedules; delaying is strictly more powerful",
	}
	// Part 1: embedding equivalence.
	trials := 60
	length := 300
	if cfg.Quick {
		trials, length = 15, 100
	}
	eq := metrics.NewTable("Greedy(LRU) in Hassidim's model vs S_LRU in the paper's model",
		"workload", "trials", "mismatches")
	totalMismatch := 0
	for _, kind := range workload.Kinds() {
		mismatch := 0
		for trial := 0; trial < trials; trial++ {
			rs, err := workload.Generate(workload.Spec{
				Cores: 2 + trial%3, Length: length, Pages: 10, Kind: kind,
				Seed: cfg.Seed + int64(trial)*7,
			})
			if err != nil {
				return nil, err
			}
			in := core.Instance{R: rs, P: core.Params{K: 8, Tau: trial % 4}}
			g, err := hassidim.GreedyLRU(in)
			if err != nil {
				return nil, err
			}
			simRes, err := sim.Run(in, sharedLRU(), nil)
			if err != nil {
				return nil, err
			}
			same := g.Makespan == simRes.Makespan
			for j := range rs {
				same = same && g.Faults[j] == simRes.Faults[j]
			}
			if !same {
				mismatch++
			}
		}
		totalMismatch += mismatch
		eq.AddRow(string(kind), trials, mismatch)
	}
	res.Tables = append(res.Tables, eq)
	if totalMismatch != 0 {
		res.Notes = append(res.Notes, "VIOLATION: greedy embedding diverged from the paper model")
	}

	// Part 2: the value of delaying, exhaustively on tiny instances.
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	sepTrials := 60
	if cfg.Quick {
		sepTrials = 20
	}
	strictHelp, sum := 0, 0
	var worst float64 = 1
	for trial := 0; trial < sepTrials; trial++ {
		p := 2
		k := 2 + rng.Intn(2)
		tau := 1 + rng.Intn(3)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 2 + rng.Intn(4)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + rng.Intn(3))
			}
			rs[j] = s
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		free, _, err := hassidim.MinMakespan(in, hassidim.Options{MaxStates: 500000})
		if err != nil {
			continue
		}
		strict, _, err := hassidim.MinMakespan(in, hassidim.Options{NoDelay: true, MaxStates: 500000})
		if err != nil {
			continue
		}
		sum++
		if free < strict {
			strictHelp++
			if r := float64(strict) / float64(free); r > worst {
				worst = r
			}
		}
	}
	sep := metrics.NewTable("Optimal makespan: delaying allowed vs forbidden (random tiny instances)",
		"instances", "delay_strictly_better", "worst_ratio")
	sep.AddRow(sum, strictHelp, worst)
	res.Tables = append(res.Tables, sep)
	res.Notes = append(res.Notes,
		"delaying never hurts and strictly helps on a sizable fraction of instances — the conservative model is a genuine restriction")
	return res, nil
}

// runE15 — the Barve–Grove–Vitter multiapplication model (Section 2):
// with τ=0 the paper's model degenerates to a fixed interleaving, LRU
// matches exactly, and FTF becomes FITF-solvable — while PIF stays
// NP-complete there (Theorem 2's τ=0 remark). For τ>0 the models
// diverge: faults re-align the sequences.
func runE15(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E15",
		Title: "Multiapplication caching (fixed interleaving) vs the paper's model",
		Claim: "Section 2 + Theorem 2 remark: at τ=0 the models coincide and FITF solves FTF; PIF remains NP-complete",
	}
	trials := 80
	if cfg.Quick {
		trials = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 15))
	lruMismatch, fitfMismatch, beladyAbove, beladyBelow := 0, 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		p := 1 + rng.Intn(2)
		k := p + rng.Intn(2)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 1 + rng.Intn(5)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + rng.Intn(3))
			}
			rs[j] = s
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 0}}
		simRes, err := sim.Run(in, sharedLRU(), nil)
		if err != nil {
			return nil, err
		}
		reqs := multiapp.Interleave(rs)
		ma, err := multiapp.ServeLRU(reqs, p, k)
		if err != nil {
			return nil, err
		}
		if ma.TotalFaults() != simRes.TotalFaults() {
			lruMismatch++
		}
		exact, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			return nil, err
		}
		fitf, err := sim.Run(in, policy.NewShared(fitfF()), nil)
		if err != nil {
			return nil, err
		}
		if fitf.TotalFaults() != exact.Faults {
			fitfMismatch++
		}
		maOPT, err := multiapp.ServeOPT(reqs, p, k)
		if err != nil {
			return nil, err
		}
		switch {
		case maOPT.TotalFaults() > exact.Faults:
			beladyAbove++
		case maOPT.TotalFaults() < exact.Faults:
			beladyBelow++
		}
	}
	tbl := metrics.NewTable("τ=0 relations (random tiny instances)",
		"trials", "lru_mismatches", "S_FITF_vs_OPT_mismatches", "belady_above_OPT", "belady_strictly_below_OPT")
	tbl.AddRow(trials, lruMismatch, fitfMismatch, beladyAbove, beladyBelow)
	res.Tables = append(res.Tables, tbl)
	if lruMismatch != 0 || fitfMismatch != 0 || beladyAbove != 0 {
		res.Notes = append(res.Notes, "VIOLATION: τ=0 relation failed")
	} else {
		res.Notes = append(res.Notes,
			fmt.Sprintf("at τ=0: LRU coincides exactly; shared FITF achieves the optimum (the paper's FITF-solvability claim); Belady on the interleaving lower-bounds it, strictly on %d instances where it would evict a same-round fetch the model forbids", beladyBelow))
	}

	// Divergence for τ>0: the interleaving model's predictions stop
	// matching the simulator once faults re-align the sequences.
	length := 600
	if cfg.Quick {
		length = 150
	}
	div := metrics.NewTable("Model divergence as τ grows (zipf workload, p=4, K=16)",
		"tau", "paper_model_lru", "interleaving_lru", "divergence")
	rs, err := workload.Generate(workload.Spec{
		Cores: 4, Length: length, Pages: 24, Kind: workload.Zipf, Seed: cfg.Seed + 99,
	})
	if err != nil {
		return nil, err
	}
	reqs := multiapp.Interleave(rs)
	ma, err := multiapp.ServeLRU(reqs, 4, 16)
	if err != nil {
		return nil, err
	}
	for _, tau := range []int{0, 1, 2, 4, 8} {
		in := core.Instance{R: rs, P: core.Params{K: 16, Tau: tau}}
		simRes, err := sim.Run(in, sharedLRU(), nil)
		if err != nil {
			return nil, err
		}
		d := simRes.TotalFaults() - ma.TotalFaults()
		if d < 0 {
			d = -d
		}
		div.AddRow(tau, simRes.TotalFaults(), ma.TotalFaults(), d)
	}
	res.Tables = append(res.Tables, div)

	// The pinned-rule gap (documented in offline/ftfseq.go): the paper's
	// Algorithm 1 successor rule vs the exact logical-order optimum.
	gap := metrics.NewTable("Algorithm 1's pinned successor rule vs exact logical-order optimum",
		"instance", "pinned_dp", "exact_dp", "belady_on_interleaving")
	gi := core.Instance{
		R: core.RequestSet{{2, 2}, {100, 101, 101, 100}},
		P: core.Params{K: 2, Tau: 0},
	}
	pinned, err := offline.SolveFTF(gi, offline.Options{})
	if err != nil {
		return nil, err
	}
	exact, err := offline.SolveFTFSeq(gi, offline.Options{})
	if err != nil {
		return nil, err
	}
	greqs := multiapp.Interleave(gi.R)
	gOPT, err := multiapp.ServeOPT(greqs, 2, 2)
	if err != nil {
		return nil, err
	}
	gap.AddRow("{<2 2>, <100 101 101 100>} K=2 τ=0", pinned.Faults, exact.Faults, gOPT.TotalFaults())
	res.Tables = append(res.Tables, gap)
	res.Notes = append(res.Notes,
		"the pinned rule (C′ ⊇ R(x)) overshoots the true optimum when a same-step eviction is profitable — rare (≈1% of random tiny instances) but real")
	return res, nil
}

// runE16 — fairness, the paper's proposed future direction (Section 6),
// with PIF as the offline yardstick: how close do online strategies get
// to the fairest feasible fault distribution?
func runE16(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E16",
		Title: "Fairness: online strategies vs the PIF offline yardstick",
		Claim: "Section 6: fairness (bounded per-core faults, PIF) conflicts with minimizing total faults; Section 1: PIF formalises per-core budgets",
	}
	// Part 1: online fairness comparison on an unbalanced workload.
	length := 2400
	if cfg.Quick {
		length = 400
	}
	var rs core.RequestSet
	big := make(core.Sequence, length)
	for i := range big {
		big[i] = core.PageID(i % 12)
	}
	rs = append(rs, big)
	for j := 1; j < 4; j++ {
		small := make(core.Sequence, length)
		for i := range small {
			small[i] = core.PageID(1000*j + i%2)
		}
		rs = append(rs, small)
	}
	in := core.Instance{R: rs, P: core.Params{K: 16, Tau: 2}}
	tbl := metrics.NewTable("Unbalanced workload: one 12-page looper vs three 2-page cores (p=4, K=16, τ=2)",
		"strategy", "total_faults", "max_core_faults", "jain", "makespan")
	strategies := []sim.Strategy{
		sharedLRU(),
		policy.NewStatic(policy.EvenSizes(16, 4), lruF()),
		policy.NewDynamicLRU(),
		policy.NewFairShare(32),
		policy.NewFairShare(128),
		policy.NewUCP(128),
	}
	for _, s := range strategies {
		r, err := sim.Run(in, s, nil)
		if err != nil {
			return nil, err
		}
		var maxF int64
		for _, f := range r.Faults {
			if f > maxF {
				maxF = f
			}
		}
		tbl.AddRow(s.Name(), r.TotalFaults(), maxF, metrics.JainIndex(r.Faults), r.Makespan)
	}
	res.Tables = append(res.Tables, tbl)

	// Part 2: the offline yardstick on a tiny instance — the smallest
	// uniform per-core fault budget Algorithm 2 certifies feasible,
	// against what online strategies actually incur by the same time.
	tiny := core.Instance{
		R: core.RequestSet{
			{0, 1, 0, 1, 0, 1},
			{100, 101, 102, 100, 101, 102},
		},
		P: core.Params{K: 4, Tau: 1},
	}
	t := int64(14)
	bstar, err := offline.MinUniformBound(tiny, t, offline.Options{})
	if err != nil {
		return nil, err
	}
	y := metrics.NewTable(fmt.Sprintf("Offline fairness yardstick (p=2, K=4, τ=1, T=%d)", t),
		"quantity", "value")
	y.AddRow("min feasible uniform bound b* (Algorithm 2)", bstar)
	for _, s := range []sim.Strategy{sharedLRU(), policy.NewFairShare(4)} {
		var worst int64
		counts := make([]int64, tiny.R.NumCores())
		_, err := sim.Run(tiny, s, func(ev sim.Event) {
			if ev.Fault && ev.Time < t {
				counts[ev.Core]++
			}
		})
		if err != nil {
			return nil, err
		}
		for _, c := range counts {
			if c > worst {
				worst = c
			}
		}
		y.AddRow("max per-core faults by T under "+s.Name(), worst)
	}
	res.Tables = append(res.Tables, y)
	res.Notes = append(res.Notes,
		"FairShare trades a few extra total faults for a much flatter per-core distribution; the PIF bound b* certifies how flat any schedule could be")
	return res, nil
}
