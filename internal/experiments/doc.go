// Package experiments reproduces every quantitative claim of López-Ortiz
// & Salinger's "Paging for Multicore Processors" as runnable experiments,
// plus follow-up studies the exact solvers enable. The registry:
//
//	E1   Lemma 1      fixed static partition: LRU within max_j k_j of per-part OPT
//	E2   Lemma 2      online static partitions lose Ω(n)
//	E3   Theorem 1(1) shared LRU beats every static partition by Ω(n)
//	E4   Theorem 1(2) shared LRU within K of the best static partition
//	E5   Theorem 1(3) slowly changing dynamic partitions lose ω(1)
//	E6   Lemma 3      global-LRU dynamic partition ≡ shared LRU, event for event
//	E7   Lemma 4      shared LRU loses Ω(p(τ+1)) to the sacrifice schedule
//	E8   §4 remark    FITF stops being optimal past τ = K/p
//	E9   Theorems 2–3 the 3-/4-PARTITION gadgets, executable both directions
//	E10  Theorem 6    Algorithm 1 correctness (vs exhaustive search) and scaling
//	E11  Theorem 7    Algorithm 2 correctness and scaling
//	E12  Theorems 4–5 honesty and per-sequence-FITF restrictions are lossless
//	E13  practice     policy × workload matrix (17 strategies, 5 families)
//	E14  Section 2    Hassidim's model: exact embedding; the value of delaying
//	E15  Section 2    multiapplication caching; the τ=0 boundary; pinned-rule gap
//	E16  Section 6    fairness: FairShare/UCP vs the PIF yardstick
//	E17  beyond       alignment anomalies (cache-size and fetch-delay)
//	E18  Section 6    empirical competitive ratios vs the exact OPT
//	E19  Section 3    fault-optimal vs makespan-optimal schedules conflict
//	E20  method       automatic adversary synthesis for any strategy
//	E21  Definition 2 the exact PIF fault-budget Pareto frontier
//	E22  Section 1    resource augmentation: Hassidim's Ω(τ/α) direction
//
// Every experiment is deterministic given Config.Seed, runs at reduced
// size with Config.Quick (the regression suite), and renders to text or
// markdown. cmd/mcexp is the CLI; bench_test.go mirrors each experiment
// as a benchmark.
package experiments
