package experiments

import (
	"fmt"
	"path/filepath"
	"sync"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/telemetry"
)

// telemetryState is the shared bookkeeping behind Config.WithTelemetry:
// the export root plus a per-experiment run counter that keeps export
// directories unique and deterministic (each experiment issues its runs
// sequentially, even under RunAllParallel).
type telemetryState struct {
	dir    string
	window int64
	mu     sync.Mutex
	seq    map[string]int
}

// WithTelemetry returns a copy of cfg in which every mustRun simulation
// dumps a windowed telemetry export (windows.jsonl, CSV matrices,
// Prometheus snapshot, manifest) under
// dir/<experiment>/<nn>_<strategy>_k<K>_tau<τ>/. window is the window
// width in time steps (0 = telemetry default).
func (c Config) WithTelemetry(dir string, window int64) Config {
	c.telem = &telemetryState{dir: dir, window: window, seq: map[string]int{}}
	return c
}

// mustRun simulates and fails the experiment on any protocol error.
// When the config carries telemetry (WithTelemetry), the run's timeline
// is exported under the experiment's directory.
func mustRun(cfg Config, exp string, in core.Instance, s sim.Strategy) (sim.Result, error) {
	ts := cfg.telem
	if ts == nil {
		return sim.Run(in, s, nil)
	}
	ts.mu.Lock()
	n := ts.seq[exp]
	ts.seq[exp] = n + 1
	ts.mu.Unlock()
	label := fmt.Sprintf("%02d_%s_k%d_tau%d",
		n, telemetry.SanitizeLabel(s.Name()), in.P.K, in.P.Tau)
	sess, err := telemetry.Start(telemetry.SessionConfig{
		Dir: filepath.Join(ts.dir, exp, label),
		Collector: telemetry.Config{
			Cores:  in.R.NumCores(),
			Params: in.P,
			Window: ts.window,
		},
		Manifest: telemetry.Manifest{
			Tool:         "mcexp",
			Source:       exp,
			Strategy:     s.Name(),
			StrategyName: s.Name(),
			Cores:        in.R.NumCores(),
			Requests:     in.R.TotalLen(),
			Pages:        len(in.R.Universe()),
			K:            in.P.K,
			Tau:          in.P.Tau,
			Seed:         cfg.Seed,
			Window:       ts.window,
		},
	})
	if err != nil {
		return sim.Result{}, err
	}
	res, err := sim.Run(in, s, sess.Observer())
	if err != nil {
		sess.Abort()
		return res, err
	}
	return res, sess.Close(res)
}
