package experiments

import (
	"fmt"
	"math/rand"

	"mcpaging/internal/core"
	"mcpaging/internal/hassidim"
	"mcpaging/internal/metrics"
	"mcpaging/internal/offline"
	"mcpaging/internal/sim"
)

func init() {
	register("E19", runE19)
}

// runE19 — objective conflict. The paper minimizes faults (FTF);
// Hassidim minimizes makespan. Within the paper's own model the two
// objectives already diverge: a fault-minimal schedule can sacrifice one
// core (stretching its finish time, hence the makespan) to save total
// faults, while the makespan-minimal schedule spreads the pain. The
// experiment quantifies how often and by how much, by replaying the
// fault-optimal schedule (Algorithm 1, exact variant) and comparing its
// makespan against the exhaustive makespan optimum restricted to
// no-delay schedules (the paper's model).
func runE19(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E19",
		Title: "Total faults vs makespan: the objectives conflict",
		Claim: "Section 3 (framing): FTF is one of several natural objectives; an FTF-optimal schedule need not be makespan-optimal",
	}
	trials := 80
	if cfg.Quick {
		trials = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 19))
	conflicts, valid := 0, 0
	worstAbs := int64(0)
	var example string
	for trial := 0; trial < trials; trial++ {
		p := 2
		k := 2 + rng.Intn(2)
		tau := 1 + rng.Intn(3)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 2 + rng.Intn(4)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + rng.Intn(3))
			}
			rs[j] = s
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		_, sched, err := offline.SolveFTFSeqSchedule(in, offline.Options{})
		if err != nil {
			continue
		}
		rep := offline.NewReplayer(sched)
		simRes, err := sim.Run(in, rep, nil)
		if err != nil || rep.Err() != nil {
			continue
		}
		mkOpt, _, err := hassidim.MinMakespan(in, hassidim.Options{NoDelay: true, MaxStates: 400000})
		if err != nil {
			continue
		}
		valid++
		if simRes.Makespan > mkOpt {
			conflicts++
			if gap := simRes.Makespan - mkOpt; gap > worstAbs {
				worstAbs = gap
				example = compactInstance(rs, k, tau)
			}
		}
	}
	tbl := metrics.NewTable("Fault-optimal schedule's makespan vs the makespan optimum (random tiny instances)",
		"instances", "fault_opt_makespan_suboptimal", "worst_gap_steps")
	tbl.AddRow(valid, conflicts, worstAbs)
	res.Tables = append(res.Tables, tbl)
	if example != "" {
		res.Notes = append(res.Notes, "worst conflict on "+example)
	}
	res.Notes = append(res.Notes,
		"the Algorithm-1 schedule trades makespan for faults on a fraction of instances — PIF-style per-core constraints (or makespan itself) are genuinely different objectives, as Section 3 anticipates")
	return res, nil
}

// compactInstance formats an instance for a note line.
func compactInstance(rs core.RequestSet, k, tau int) string {
	return fmt.Sprintf("R=%v K=%d tau=%d", rs, k, tau)
}
