package experiments

import (
	"fmt"

	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func init() {
	register("E21", runE21)
}

// runE21 — the PIF Pareto frontier. PARTIAL-INDIVIDUAL-FAULTS asks
// whether a budget vector is feasible; sweeping Algorithm 2 over budget
// pairs yields the exact trade-off curve between the two cores' fault
// counts. The experiment prints the frontier for a contended two-core
// instance and locates the online strategies' achieved fault pairs
// relative to it — how far from Pareto-optimal is each online choice?
func runE21(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E21",
		Title: "The PIF fairness frontier and where online strategies land",
		Claim: "Definition 2 / Section 6: per-core fault budgets trade off against each other; Algorithm 2 charts the exact frontier",
	}
	// A contended instance: both cores juggle 3 pages through K=4 with
	// τ=1 — neither can have everything.
	in := core.Instance{
		R: core.RequestSet{
			{0, 1, 2, 0, 1, 2, 0, 1},
			{100, 101, 102, 100, 101, 102, 100, 101},
		},
		P: core.Params{K: 4, Tau: 1},
	}
	t := int64(16)
	frontier, err := offline.ParetoFrontier(in, t, offline.Options{})
	if err != nil {
		return nil, err
	}
	ftbl := metrics.NewTable(
		fmt.Sprintf("Pareto-minimal feasible fault budgets at T=%d (p=2, K=4, τ=1)", t),
		"b0", "b1")
	for _, pt := range frontier {
		ftbl.AddRow(pt[0], pt[1])
	}
	res.Tables = append(res.Tables, ftbl)

	// Where do online strategies land against the frontier?
	dominated := func(f0, f1 int64) string {
		for _, pt := range frontier {
			if pt[0] <= f0 && pt[1] <= f1 && (pt[0] < f0 || pt[1] < f1) {
				return fmt.Sprintf("dominated by (%d,%d)", pt[0], pt[1])
			}
			if pt[0] == f0 && pt[1] == f1 {
				return "on the frontier"
			}
		}
		return "undominated"
	}
	otbl := metrics.NewTable("Online strategies' fault pairs by the checkpoint",
		"strategy", "f0", "f1", "position")
	for _, s := range []sim.Strategy{
		sharedLRU(),
		policy.NewStatic([]int{2, 2}, lruF()),
		policy.NewStatic([]int{3, 1}, lruF()),
		policy.NewFairShare(8),
		policy.NewUCP(8),
	} {
		counts := make([]int64, 2)
		if _, err := sim.Run(in, s, func(ev sim.Event) {
			if ev.Fault && ev.Time < t {
				counts[ev.Core]++
			}
		}); err != nil {
			return nil, err
		}
		otbl.AddRow(s.Name(), counts[0], counts[1], dominated(counts[0], counts[1]))
	}
	res.Tables = append(res.Tables, otbl)
	res.Notes = append(res.Notes,
		"the frontier makes the PIF objective concrete: each online strategy picks one point in budget space, usually strictly inside the feasible region")
	return res, nil
}
