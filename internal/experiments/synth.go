package experiments

import (
	"fmt"

	"mcpaging/internal/adversary"
	"mcpaging/internal/advsearch"
	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/stats"
)

func init() {
	register("E20", runE20)
}

// runE20 — adversary synthesis. The paper's lower bounds are hand-built
// constructions; with the exact DP as a scoring oracle, hill climbing
// finds bad instances automatically, for any strategy. The experiment
// synthesises adversaries against four shared policies across τ and
// compares against the Lemma 4 hand construction at the same tiny scale.
func runE20(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E20",
		Title: "Automatic adversary synthesis vs the hand constructions",
		Claim: "Lemmas 1–4 (method): bad inputs exist; here they are found mechanically for any strategy",
	}
	iters, restarts := 250, 4
	if cfg.Quick {
		iters, restarts = 80, 2
	}
	mk := func(name string) func() sim.Strategy {
		return func() sim.Strategy {
			f, err := cache.NewFactory(name, cfg.Seed)
			if err != nil {
				panic(err)
			}
			return policy.NewShared(f)
		}
	}
	for _, tau := range []int{0, 2, 4} {
		tbl := metrics.NewTable(
			fmt.Sprintf("synthesised worst instances (p=2, K=3, τ=%d, ≤6 requests/core)", tau),
			"strategy", "found_ratio", "online", "opt", "witness")
		for _, name := range []string{"LRU", "FIFO", "MARK", "ARC"} {
			found, err := advsearch.Search(advsearch.Config{
				Build: mk(name),
				P:     2, K: 3, Tau: tau,
				Iters: iters, Restarts: restarts,
				Seed: cfg.Seed + int64(tau)*10,
			})
			if err != nil {
				return nil, err
			}
			tbl.AddRow("S("+name+")", found.Ratio, found.Online, found.Opt,
				fmt.Sprintf("%v", found.R))
		}
		res.Tables = append(res.Tables, tbl)
	}

	// The hand construction at the same scale, for calibration.
	hand := metrics.NewTable("Lemma 4 hand construction at matched tiny scale (p=2, K=4)",
		"tau", "slru", "exact_opt", "ratio")
	for _, tau := range []int{0, 2, 4} {
		rs, err := adversary.Lemma4(2, 4, 6)
		if err != nil {
			return nil, err
		}
		in := core.Instance{R: rs, P: core.Params{K: 4, Tau: tau}}
		lruRes, err := sim.Run(in, sharedLRU(), nil)
		if err != nil {
			return nil, err
		}
		opt, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			return nil, err
		}
		hand.AddRow(tau, lruRes.TotalFaults(), opt.Faults, stats.Ratio(lruRes.TotalFaults(), opt.Faults))
	}
	res.Tables = append(res.Tables, hand)
	res.Notes = append(res.Notes,
		"the synthesiser reaches or beats the hand construction's ratio at the same scale, and produces witnesses for policies the paper does not analyse (ARC)")
	return res, nil
}
