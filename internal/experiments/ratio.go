package experiments

import (
	"fmt"
	"math/rand"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/stats"
)

func init() {
	register("E18", runE18)
}

// runE18 — empirical competitive ratios. The paper's conclusions
// (Section 6) leave open how to evaluate online strategies, arguing the
// offline optimum may be too strong a baseline because it can engineer
// alignments. With the exact DP we can measure that strength directly:
// the distribution of online/OPT fault ratios over random instances, per
// fetch delay τ. Lemma 4 says the worst case grows like p(τ+1); the
// average case turns out far tamer — evidence for the paper's suspicion
// that competitive analysis against the aligning OPT is pessimistic.
func runE18(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E18",
		Title: "Empirical competitive ratios against the exact offline optimum",
		Claim: "Section 6 (open question): how pessimistic is the aligning OPT as a baseline? Lemma 4: worst case Ω(p(τ+1)); measured: the average case stays near 1",
	}
	trials := 250
	if cfg.Quick {
		trials = 60
	}
	type entry struct {
		name  string
		mk    func(seed int64) sim.Strategy
		seeds int // >1: average online faults over seeds (randomized policies)
	}
	entries := []entry{
		{"S(LRU)", func(int64) sim.Strategy { return sharedLRU() }, 1},
		{"S(FIFO)", func(int64) sim.Strategy {
			return policy.NewShared(func() cache.Policy { return cache.NewFIFO() })
		}, 1},
		{"S(MARK)", func(int64) sim.Strategy {
			return policy.NewShared(func() cache.Policy { return cache.NewMarking() })
		}, 1},
		{"S(RMARK) E[...]", func(seed int64) sim.Strategy {
			return policy.NewShared(func() cache.Policy { return cache.NewRMark(seed) })
		}, 5},
		{"S(FITF)", func(int64) sim.Strategy {
			return policy.NewShared(fitfF())
		}, 1},
	}

	for _, tau := range []int{0, 1, 2, 4} {
		tbl := metrics.NewTable(fmt.Sprintf("online/OPT fault ratio over %d random tiny instances (p=2, τ=%d)", trials, tau),
			"strategy", "mean", "median", "p_max", "share_optimal")
		rng := rand.New(rand.NewSource(cfg.Seed + int64(100+tau)))
		// Draw the instance set once per τ so strategies see identical
		// inputs.
		var instances []core.Instance
		for i := 0; i < trials; i++ {
			p := 2
			k := p + 1 + rng.Intn(2)
			rs := make(core.RequestSet, p)
			for j := range rs {
				n := 2 + rng.Intn(5)
				s := make(core.Sequence, n)
				for x := range s {
					s[x] = core.PageID(100*j + rng.Intn(3))
				}
				rs[j] = s
			}
			instances = append(instances, core.Instance{R: rs, P: core.Params{K: k, Tau: tau}})
		}
		opts := make([]int64, len(instances))
		for i, in := range instances {
			sol, err := offline.SolveFTFSeq(in, offline.Options{})
			if err != nil {
				return nil, err
			}
			opts[i] = sol.Faults
		}
		for _, e := range entries {
			var ratios []float64
			optimal := 0
			for i, in := range instances {
				var total float64
				for seed := int64(0); seed < int64(e.seeds); seed++ {
					r, err := sim.Run(in, e.mk(seed), nil)
					if err != nil {
						return nil, err
					}
					total += float64(r.TotalFaults())
				}
				mean := total / float64(e.seeds)
				ratios = append(ratios, mean/float64(opts[i]))
				if int64(mean) == opts[i] && mean == float64(int64(mean)) {
					optimal++
				}
			}
			s := stats.Summarize(ratios)
			tbl.AddRow(e.name, s.Mean, s.Median, s.Max,
				fmt.Sprintf("%d/%d", optimal, trials))
		}
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"mean ratios stay close to 1 across τ while the Lemma 4 worst case grows with τ — supporting the paper's point that competitive analysis against the aligning OPT is pessimistic on typical inputs")
	return res, nil
}
