package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry order %v, want %v", ids, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("E99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

// TestAllExperimentsQuick runs the full suite in quick mode and checks
// that every experiment produces tables and no VIOLATION notes — the
// quick suite is the regression harness for all reproduced claims.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 7}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Errorf("result id %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Error("no tables produced")
			}
			for _, tb := range res.Tables {
				if tb.NumRows() == 0 {
					t.Error("empty table")
				}
			}
			for _, n := range res.Notes {
				if strings.Contains(n, "VIOLATION") || strings.Contains(n, "WARNING") {
					t.Errorf("experiment reports: %s", n)
				}
			}
			var buf bytes.Buffer
			if err := res.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), id) {
				t.Error("render missing id")
			}
		})
	}
}

func TestRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(Config{Quick: true, Seed: 3}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "== "+id+":") {
			t.Errorf("output missing %s", id)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		r, _ := Get("E7")
		res, err := r(Config{Quick: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res.Render(&buf)
		return buf.String()
	}
	if run() != run() {
		t.Fatal("experiment not deterministic")
	}
}
