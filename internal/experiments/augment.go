package experiments

import (
	"fmt"
	"math/rand"

	"mcpaging/internal/core"
	"mcpaging/internal/hassidim"
	"mcpaging/internal/metrics"
	"mcpaging/internal/stats"
)

func init() {
	register("E22", runE22)
}

// runE22 — resource augmentation in Hassidim's model. The result that
// motivated the paper (quoted in its Section 1) is Hassidim's: LRU with
// cache K has makespan competitive ratio Ω(τ/α) against a
// delay-empowered offline with cache K/α. The experiment measures that
// augmented ratio on small instances: greedy LRU with the full cache
// against the exhaustive delaying optimum with half the cache, sweeping
// τ — the ratio grows with τ even though the offline plays with half
// the cells.
func runE22(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E22",
		Title: "Resource augmentation: LRU(K) vs delaying OPT(K/2) on makespan",
		Claim: "Section 1 (Hassidim's motivating bound): LRU's makespan ratio vs a delay-empowered OPT with an α-times smaller cache grows with τ",
	}
	// Hassidim's construction, concretely: p cores each alternating over
	// a 2-page working set. Interleaved under no-delay LRU with cache K
	// < 2p the reuse distances exceed K and every request faults; the
	// delaying offline hosts one working set at a time in a cache of
	// just 2 cells (α = K/2) and runs at hit speed after the cold
	// misses.
	p := 4
	k := 6 // 2p = 8 > K: greedy LRU thrashes
	perCore := 200
	if cfg.Quick {
		perCore = 60
	}
	rs := make(core.RequestSet, p)
	for j := range rs {
		s := make(core.Sequence, perCore)
		for i := range s {
			s[i] = core.PageID(100*j + i%2)
		}
		rs[j] = s
	}
	batches := make([][]int, p)
	for j := range batches {
		batches[j] = []int{j}
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("makespan: no-delay LRU(K=%d) vs batching schedule with 2 live cells (p=%d, n/p=%d)", k, p, perCore),
		"tau", "lru_makespan", "batch_makespan", "ratio", "(tau+1)/p")
	var prev float64
	grew := true
	for _, tau := range []int{0, 2, 4, 8, 16} {
		full := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		g, err := hassidim.GreedyLRU(full)
		if err != nil {
			return nil, err
		}
		small := core.Instance{R: rs, P: core.Params{K: 2, Tau: tau}}
		b, err := hassidim.BatchLRU(small, batches)
		if err != nil {
			return nil, err
		}
		ratio := stats.Ratio(g.Makespan, b.Makespan)
		tbl.AddRow(tau, g.Makespan, b.Makespan, ratio, float64(tau+1)/float64(p))
		if ratio < prev {
			grew = false
		}
		prev = ratio
	}
	res.Tables = append(res.Tables, tbl)

	// Sanity: on random tiny instances the exhaustive delaying optimum
	// with half the cache confirms the batching schedule is achievable
	// (OPT ≤ batch) — the lower-bound instance above just scales it.
	rng := rand.New(rand.NewSource(cfg.Seed + 22))
	checks, ok := 0, 0
	for trial := 0; trial < 20; trial++ {
		tiny := make(core.RequestSet, 2)
		for j := range tiny {
			n := 3 + rng.Intn(3)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + i%2)
			}
			tiny[j] = s
		}
		in := core.Instance{R: tiny, P: core.Params{K: 2, Tau: 1 + rng.Intn(3)}}
		opt, _, err := hassidim.MinMakespan(in, hassidim.Options{MaxStates: 300000})
		if err != nil {
			continue
		}
		b, err := hassidim.BatchLRU(in, [][]int{{0}, {1}})
		if err != nil {
			continue
		}
		checks++
		if opt <= b.Makespan {
			ok++
		}
	}
	chk := metrics.NewTable("sanity: exhaustive delaying OPT ≤ batching schedule (tiny instances)",
		"checks", "holds")
	chk.AddRow(checks, ok)
	res.Tables = append(res.Tables, chk)

	if grew && ok == checks {
		res.Notes = append(res.Notes,
			"the augmented ratio tracks (τ+1)/p and grows without bound in τ — the Ω(τ/α) direction of Hassidim's bound, reproduced with α = K/2 cache augmentation against the offline")
	} else {
		res.Notes = append(res.Notes, "WARNING: augmentation shape not reproduced")
	}
	return res, nil
}
