package experiments

import (
	"fmt"

	"mcpaging/internal/adversary"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/metrics"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/stats"
	"mcpaging/internal/workload"
)

func init() {
	register("E1", runE1)
	register("E2", runE2)
	register("E3", runE3)
	register("E4", runE4)
	register("E5", runE5)
	register("E6", runE6)
	register("E7", runE7)
	register("E8", runE8)
}

// runE1 — Lemma 1: with a fixed static partition, per-part LRU is
// exactly max_j k_j-competitive against per-part OPT on the adversarial
// sequence; the ratio grows linearly with the largest part and never
// crosses the bound.
func runE1(cfg Config) (*Result, error) {
	perCore := 2000
	if cfg.Quick {
		perCore = 300
	}
	tbl := metrics.NewTable("sP^B_LRU vs sP^B_OPT on the Lemma 1 sequence (p=4, τ=1)",
		"max_k", "sizes", "lru_faults", "opt_faults", "ratio", "bound")
	res := &Result{
		ID:    "E1",
		Title: "Fixed static partition: LRU vs per-part OPT",
		Claim: "Lemma 1: sP^B_A/sP^B_OPT = Ω(max_j k_j), and ≤ max_j k_j for LRU",
	}
	ok := true
	for _, kmax := range []int{2, 4, 8, 16} {
		sizes := []int{1, 1, 1, kmax}
		k := 3 + kmax
		rs, err := adversary.Lemma1(sizes, perCore)
		if err != nil {
			return nil, err
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 1}}
		lruRes, err := mustRun(cfg, "E1", in, policy.NewStatic(sizes, lruF()))
		if err != nil {
			return nil, err
		}
		optRes, err := mustRun(cfg, "E1", in, policy.NewStatic(sizes, fitfF()))
		if err != nil {
			return nil, err
		}
		ratio := stats.Ratio(lruRes.TotalFaults(), optRes.TotalFaults())
		if ratio > float64(kmax) {
			ok = false
		}
		tbl.AddRow(kmax, fmt.Sprintf("%v", sizes), lruRes.TotalFaults(), optRes.TotalFaults(), ratio, kmax)
	}
	res.Tables = append(res.Tables, tbl)
	if ok {
		res.Notes = append(res.Notes, "upper bound max_j k_j respected at every point; ratio tracks max_j k_j")
	} else {
		res.Notes = append(res.Notes, "VIOLATION: ratio exceeded max_j k_j")
	}
	return res, nil
}

// runE2 — Lemma 2: a fixed online static partition loses Ω(n) against
// the offline-optimal static partition on the Lemma 2 sequence.
func runE2(cfg Config) (*Result, error) {
	lens := []int{250, 500, 1000, 2000, 4000}
	if cfg.Quick {
		lens = []int{100, 200, 400}
	}
	sizes := []int{2, 2, 2, 2}
	k := 8
	tbl := metrics.NewTable("online static (even) vs offline-optimal static partition (p=4, K=8, τ=1)",
		"n_per_core", "online_faults", "opt_static_faults", "opt_sizes", "ratio")
	res := &Result{
		ID:    "E2",
		Title: "Online static partitions are not competitive",
		Claim: "Lemma 2: ∃R: sP^B_A/sP^OPT_LRU = Ω(n) for any online static partition B",
	}
	var xs, ys []float64
	for _, n := range lens {
		rs, err := adversary.Lemma2(sizes, n)
		if err != nil {
			return nil, err
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 1}}
		online, err := mustRun(cfg, "E2", in, policy.NewStatic(sizes, lruF()))
		if err != nil {
			return nil, err
		}
		opt, err := mattson.OptimalLRU(rs, k)
		if err != nil {
			return nil, err
		}
		ratio := stats.Ratio(online.TotalFaults(), opt.Faults)
		tbl.AddRow(n, online.TotalFaults(), opt.Faults, fmt.Sprintf("%v", opt.Sizes), ratio)
		xs = append(xs, float64(n))
		ys = append(ys, ratio)
	}
	res.Tables = append(res.Tables, tbl)
	fit := stats.LinearFit(xs, ys)
	res.Notes = append(res.Notes,
		fmt.Sprintf("ratio vs n: slope %.4g, R²=%.3f (linear growth ⇒ Ω(n) separation)", fit.Slope, fit.R2))
	return res, nil
}

// runE3 — Theorem 1(1): shared LRU beats the best static partition (with
// any per-part policy, here per-part OPT) by a factor growing linearly
// in n on the round-robin construction.
func runE3(cfg Config) (*Result, error) {
	xsweep := []int{25, 50, 100, 200, 400}
	if cfg.Quick {
		xsweep = []int{10, 20, 40}
	}
	p, k, tau := 2, 4, 1
	tbl := metrics.NewTable("sP^OPT_OPT vs S_LRU on the Theorem 1 round-robin sequence (p=2, K=4, τ=1)",
		"x", "n_total", "slru_faults", "spopt_opt_faults", "ratio")
	res := &Result{
		ID:    "E3",
		Title: "Shared LRU beats every static partition",
		Claim: "Theorem 1(1): ∃R: sP^OPT_OPT/S_LRU = Ω(n)",
	}
	var xs, ys []float64
	for _, x := range xsweep {
		rs, err := adversary.Theorem1Round(p, k, tau, x)
		if err != nil {
			return nil, err
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		shared, err := mustRun(cfg, "E3", in, sharedLRU())
		if err != nil {
			return nil, err
		}
		opt, err := mattson.OptimalOPT(rs, k)
		if err != nil {
			return nil, err
		}
		ratio := stats.Ratio(opt.Faults, shared.TotalFaults())
		tbl.AddRow(x, rs.TotalLen(), shared.TotalFaults(), opt.Faults, ratio)
		xs = append(xs, float64(rs.TotalLen()))
		ys = append(ys, ratio)
	}
	res.Tables = append(res.Tables, tbl)
	fit := stats.LinearFit(xs, ys)
	res.Notes = append(res.Notes,
		fmt.Sprintf("ratio vs n: slope %.4g, R²=%.3f (S_LRU faults stay at K+p while partitions pay Θ(n))",
			fit.Slope, fit.R2))
	return res, nil
}

// runE4 — Theorem 1(2): in the other direction, shared LRU is within a
// factor K of the best static partition on every input; measured across
// the synthetic workload families and the adversarial constructions.
func runE4(cfg Config) (*Result, error) {
	length := 4000
	if cfg.Quick {
		length = 600
	}
	p, k, tau := 4, 16, 2
	tbl := metrics.NewTable(fmt.Sprintf("S_LRU vs sP^OPT_OPT across workloads (p=%d, K=%d, τ=%d)", p, k, tau),
		"workload", "slru_faults", "spopt_opt_faults", "ratio", "bound_K")
	res := &Result{
		ID:    "E4",
		Title: "Shared LRU is K-competitive against static partitions",
		Claim: "Theorem 1(2): ∀R: S_LRU/sP^OPT_OPT ≤ K",
	}
	worst := 0.0
	check := func(name string, rs core.RequestSet) error {
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		shared, err := mustRun(cfg, "E4", in, sharedLRU())
		if err != nil {
			return err
		}
		opt, err := mattson.OptimalOPT(rs, k)
		if err != nil {
			return err
		}
		optRes, err := mustRun(cfg, "E4", in, policy.NewStatic(opt.Sizes, fitfF()))
		if err != nil {
			return err
		}
		ratio := stats.Ratio(shared.TotalFaults(), optRes.TotalFaults())
		if ratio > worst {
			worst = ratio
		}
		tbl.AddRow(name, shared.TotalFaults(), optRes.TotalFaults(), ratio, k)
		return nil
	}
	mix, err := workload.Mix(workload.Spec{Cores: p, Length: length, Pages: 24, Kind: workload.Uniform, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	for _, kind := range workload.Kinds() {
		if err := check(string(kind), mix[kind]); err != nil {
			return nil, err
		}
	}
	if rs, err := adversary.Lemma4(p, k, length/4); err == nil {
		if err := check("lemma4-cyclic", rs); err != nil {
			return nil, err
		}
	}
	if rs, err := adversary.Lemma2([]int{4, 4, 4, 4}, length/4); err == nil {
		if err := check("lemma2-adversarial", rs); err != nil {
			return nil, err
		}
	}
	res.Tables = append(res.Tables, tbl)
	if worst <= float64(k) {
		res.Notes = append(res.Notes, fmt.Sprintf("worst observed ratio %.3g ≤ K = %d", worst, k))
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf("VIOLATION: ratio %.3g > K = %d", worst, k))
	}
	return res, nil
}

// runE5 — Theorem 1(3): dynamic partitions that change o(n) times lose
// ω(1) against shared LRU; with a constant number of stages the loss is
// Ω(n). Stage schedules that track the active core recover the shared
// performance — partitions must change often to compete.
func runE5(cfg Config) (*Result, error) {
	xsweep := []int{25, 50, 100, 200}
	if cfg.Quick {
		xsweep = []int{10, 20, 40}
	}
	p, k, tau := 2, 4, 1
	tbl := metrics.NewTable("Staged dynamic partitions vs S_LRU on the round-robin sequence (p=2, K=4, τ=1)",
		"x", "n_total", "slru", "static_even", "staged_2", "aligned_p_stages", "ratio_static", "ratio_staged2")
	res := &Result{
		ID:    "E5",
		Title: "Slowly changing dynamic partitions lose to shared LRU",
		Claim: "Theorem 1(3): dP^D_A with o(n) partition changes has dP^D_A/S_LRU = ω(1); Ω(n) for O(1) changes",
	}
	var xs, ys []float64
	for _, x := range xsweep {
		rs, err := adversary.Theorem1Round(p, k, tau, x)
		if err != nil {
			return nil, err
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		shared, err := mustRun(cfg, "E5", in, sharedLRU())
		if err != nil {
			return nil, err
		}
		even := policy.EvenSizes(k, p)
		static, err := mustRun(cfg, "E5", in, policy.NewStatic(even, lruF()))
		if err != nil {
			return nil, err
		}
		// Two stages: swap the bigger share halfway.
		halftime := int64(rs.TotalLen()) * int64(tau+1) / int64(2*p)
		staged2, err := mustRun(cfg, "E5", in, policy.NewStaged([]policy.Stage{
			{At: 0, Sizes: []int{3, 1}},
			{At: halftime, Sizes: []int{1, 3}},
		}, lruF()))
		if err != nil {
			return nil, err
		}
		// p stages aligned with the turns: give the core in its distinct
		// period K/p+1 cells.
		m := k/p + 1
		turn := int64(m * (tau + x)) // requests per quiet period ≈ time per turn
		var stages []policy.Stage
		for j := 0; j < p; j++ {
			sizes := make([]int, p)
			for c := range sizes {
				sizes[c] = 1
			}
			sizes[j] = k - (p - 1)
			stages = append(stages, policy.Stage{At: int64(j) * turn, Sizes: sizes})
		}
		aligned, err := mustRun(cfg, "E5", in, policy.NewStaged(stages, lruF()))
		if err != nil {
			return nil, err
		}
		rStatic := stats.Ratio(static.TotalFaults(), shared.TotalFaults())
		rStaged := stats.Ratio(staged2.TotalFaults(), shared.TotalFaults())
		tbl.AddRow(x, rs.TotalLen(), shared.TotalFaults(), static.TotalFaults(),
			staged2.TotalFaults(), aligned.TotalFaults(), rStatic, rStaged)
		xs = append(xs, float64(rs.TotalLen()))
		ys = append(ys, rStaged)
	}
	res.Tables = append(res.Tables, tbl)
	fit := stats.LinearFit(xs, ys)
	res.Notes = append(res.Notes,
		fmt.Sprintf("two-stage partition ratio grows with n (slope %.4g, R²=%.3f); turn-aligned p-stage schedule tracks S_LRU",
			fit.Slope, fit.R2))
	return res, nil
}

// runE6 — Lemma 3: the global-LRU dynamic partition equals shared LRU
// request for request on disjoint inputs.
func runE6(cfg Config) (*Result, error) {
	trials := 60
	length := 800
	if cfg.Quick {
		trials, length = 15, 200
	}
	tbl := metrics.NewTable("dP^D_LRU ≡ S_LRU equivalence check across workload families",
		"workload", "trials", "mismatches", "slru_faults_total", "dp_faults_total")
	res := &Result{
		ID:    "E6",
		Title: "Dynamic partition with global-LRU donor equals shared LRU",
		Claim: "Lemma 3: ∃D: ∀ disjoint R, dP^D_LRU(R) = S_LRU(R)",
	}
	totalMismatch := 0
	for _, kind := range workload.Kinds() {
		mismatch := 0
		var sumS, sumD int64
		for trial := 0; trial < trials; trial++ {
			rs, err := workload.Generate(workload.Spec{
				Cores: 2 + trial%3, Length: length, Pages: 12, Kind: kind,
				Seed: cfg.Seed + int64(trial),
			})
			if err != nil {
				return nil, err
			}
			in := core.Instance{R: rs, P: core.Params{K: 8, Tau: trial % 4}}
			var evS, evD []sim.Event
			rS, err := sim.Run(in, sharedLRU(), func(e sim.Event) { evS = append(evS, e) })
			if err != nil {
				return nil, err
			}
			rD, err := sim.Run(in, policy.NewDynamicLRU(), func(e sim.Event) { evD = append(evD, e) })
			if err != nil {
				return nil, err
			}
			sumS += rS.TotalFaults()
			sumD += rD.TotalFaults()
			if len(evS) != len(evD) {
				mismatch++
				continue
			}
			for i := range evS {
				if evS[i] != evD[i] {
					mismatch++
					break
				}
			}
		}
		totalMismatch += mismatch
		tbl.AddRow(string(kind), trials, mismatch, sumS, sumD)
	}
	res.Tables = append(res.Tables, tbl)
	if totalMismatch == 0 {
		res.Notes = append(res.Notes, "exact equivalence: identical event streams in every trial")
	} else {
		res.Notes = append(res.Notes, fmt.Sprintf("VIOLATION: %d mismatching trials", totalMismatch))
	}
	return res, nil
}

// runE7 — Lemma 4: shared LRU loses a factor ≈ p(τ+1) to the sacrifice
// strategy on the cyclic construction; the measured ratio tracks the
// bound across τ and p.
func runE7(cfg Config) (*Result, error) {
	perCore := 3000
	if cfg.Quick {
		perCore = 400
	}
	tbl := metrics.NewTable("S_LRU vs the sacrifice offline strategy on the Lemma 4 sequence",
		"p", "tau", "slru_faults", "soff_faults", "ratio", "bound_p(tau+1)")
	res := &Result{
		ID:    "E7",
		Title: "Shared LRU loses Ω(p(τ+1)) to offline",
		Claim: "Lemma 4: ∃R: S_LRU/S_OPT = Ω(p(τ+1))",
	}
	for _, p := range []int{2, 4} {
		for _, tau := range []int{0, 1, 3, 7} {
			k := p * p // tall cache: K = p²
			rs, err := adversary.Lemma4(p, k, perCore)
			if err != nil {
				return nil, err
			}
			in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
			lruRes, err := mustRun(cfg, "E7", in, sharedLRU())
			if err != nil {
				return nil, err
			}
			soff, err := mustRun(cfg, "E7", in, adversary.NewSacrifice(p-1))
			if err != nil {
				return nil, err
			}
			ratio := stats.Ratio(lruRes.TotalFaults(), soff.TotalFaults())
			tbl.AddRow(p, tau, lruRes.TotalFaults(), soff.TotalFaults(), ratio, p*(tau+1))
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.Notes = append(res.Notes, "ratio grows with both p and τ, tracking p(τ+1) as n→∞")
	return res, nil
}

// runE8 — remark after Lemma 4: shared FITF stops being optimal once
// τ > K/p; the sacrifice strategy overtakes it exactly past the
// crossover.
func runE8(cfg Config) (*Result, error) {
	perCore := 2000
	if cfg.Quick {
		perCore = 300
	}
	p, k := 2, 4
	tbl := metrics.NewTable(fmt.Sprintf("S_FITF vs sacrifice on the Lemma 4 sequence (p=%d, K=%d; the paper guarantees S_FITF loses for τ > K/p = %d)", p, k, k/p),
		"tau", "fitf_faults", "soff_faults", "fitf_minus_soff", "soff_wins")
	res := &Result{
		ID:    "E8",
		Title: "Furthest-In-The-Future is not optimal for large τ",
		Claim: "Section 4 remark: τ > K/p ⇒ S_FITF(R) > S_OPT(R) on the Lemma 4 sequence",
	}
	crossoverSeen := false
	for _, tau := range []int{0, 1, 2, 3, 5, 8} {
		rs, err := adversary.Lemma4(p, k, perCore)
		if err != nil {
			return nil, err
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		fitfRes, err := mustRun(cfg, "E8", in, adversary.SharedFITF())
		if err != nil {
			return nil, err
		}
		soff, err := mustRun(cfg, "E8", in, adversary.NewSacrifice(p-1))
		if err != nil {
			return nil, err
		}
		diff := fitfRes.TotalFaults() - soff.TotalFaults()
		beaten := diff > 0
		if tau > k/p && beaten {
			crossoverSeen = true
		}
		tbl.AddRow(tau, fitfRes.TotalFaults(), soff.TotalFaults(), diff, beaten)
	}
	res.Tables = append(res.Tables, tbl)
	if crossoverSeen {
		res.Notes = append(res.Notes, "FITF is beaten for τ > K/p, as the paper remarks")
	} else {
		res.Notes = append(res.Notes, "WARNING: no crossover observed")
	}
	return res, nil
}
