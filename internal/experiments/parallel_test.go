package experiments

import (
	"bytes"
	"regexp"
	"testing"
)

// stripTimings removes the wall-clock "ms" values, the only
// run-dependent content in the reports.
func stripTimings(s string) string {
	return regexp.MustCompile(`[0-9]+\.[0-9]+\n`).ReplaceAllString(s, "X\n")
}

func TestRunAllParallelMatchesSerial(t *testing.T) {
	cfg := Config{Quick: true, Seed: 11}
	var serial, parallel bytes.Buffer
	if err := RunAll(cfg, &serial); err != nil {
		t.Fatal(err)
	}
	if err := RunAllParallel(cfg, &parallel, 4); err != nil {
		t.Fatal(err)
	}
	if stripTimings(serial.String()) != stripTimings(parallel.String()) {
		t.Fatal("parallel run output differs from serial")
	}
}

func TestRunAllParallelSingleWorker(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAllParallel(Config{Quick: true, Seed: 2}, &buf, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestRunAllParallelDefaultWorkers(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAllParallel(Config{Quick: true, Seed: 2}, &buf, 0); err != nil {
		t.Fatal(err)
	}
}
