package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// RunAllParallel executes every experiment concurrently on up to
// `workers` goroutines (0 = GOMAXPROCS) and writes the reports to w in
// registry order. Experiments are independent and deterministic given
// the seed, so the output is identical to RunAll's.
func RunAllParallel(cfg Config, w io.Writer, workers int) error {
	ids := IDs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := registry[id](cfg)
			results[i], errs[i] = res, err
		}(i, id)
	}
	wg.Wait()
	for i, id := range ids {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", id, errs[i])
		}
		if err := results[i].Render(w); err != nil {
			return err
		}
	}
	return nil
}
