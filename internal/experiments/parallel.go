package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// RunAllParallel executes every experiment concurrently on up to
// `workers` goroutines (0 = GOMAXPROCS) and writes the reports to w in
// registry order. Experiments are independent and deterministic given
// the seed, so the output is identical to RunAll's.
func RunAllParallel(cfg Config, w io.Writer, workers int) error {
	ids := IDs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	results := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = registry[ids[i]](cfg)
			}
		}()
	}
	for i := range ids {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, id := range ids {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", id, errs[i])
		}
		if err := results[i].Render(w); err != nil {
			return err
		}
	}
	return nil
}
