package experiments

import (
	"fmt"

	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/workload"
)

func init() {
	register("E13", runE13)
}

// runE13 — the practical comparison the paper's introduction motivates:
// how do shared, statically partitioned, and dynamically partitioned
// strategies compare across eviction policies and workload families?
// Reported per workload: total faults, fairness (Jain index over
// per-core faults), and makespan.
func runE13(cfg Config) (*Result, error) {
	length := 4000
	if cfg.Quick {
		length = 500
	}
	p, k, tau := 4, 16, 2
	res := &Result{
		ID:    "E13",
		Title: "Policy × workload matrix (shared vs partitioned)",
		Claim: "Section 4 framing: strategies = partition policy × eviction policy; no single choice dominates",
	}
	mix, err := workload.Mix(workload.Spec{
		Cores: p, Length: length, Pages: 24, Kind: workload.Uniform, Seed: cfg.Seed + 13,
	})
	if err != nil {
		return nil, err
	}

	// The strategy column is spelled in strategyspec's grammar — the same
	// registry the CLIs and the server build from — so the experiment
	// stays in lockstep with the composable strategy set.
	var specs []string
	for _, pol := range []string{"LRU", "FIFO", "CLOCK", "LFU", "MARK", "RMARK", "RAND", "ARC", "SLRU", "LRU2", "TINYLFU", "FWF"} {
		specs = append(specs, "S("+pol+")")
	}
	specs = append(specs, "sP[even](LRU)", "sP[opt](LRU)", "dP(LRU)", "dP[ucp](LRU)", "dP[fair](LRU)")

	for _, kind := range workload.Kinds() {
		rs := mix[kind]
		params := core.Params{K: k, Tau: tau}
		// Solo baselines for weighted speedup: each core alone with the
		// full cache under LRU.
		solo := make([]int64, p)
		for j := range rs {
			one := core.Instance{R: core.RequestSet{rs[j]}, P: params}
			sr, err := sim.Run(one, sharedLRU(), nil)
			if err != nil {
				return nil, err
			}
			solo[j] = sr.Finish[0]
		}
		// Every strategy row replays the same workload, so one runner
		// serves the whole column: the occurrence index is built once.
		rn, err := sim.NewRunner(rs)
		if err != nil {
			return nil, err
		}
		tbl := metrics.NewTable(
			fmt.Sprintf("workload=%s (p=%d, K=%d, τ=%d, n=%d)", kind, p, k, tau, rs.TotalLen()),
			"strategy", "faults", "fault_rate", "jain_fairness", "weighted_speedup", "makespan")
		for _, spec := range specs {
			st, err := strategyspec.Build(spec, rs, k, cfg.Seed+99)
			if err != nil {
				return nil, err
			}
			r, err := rn.Run(params, st, nil)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(spec, r.TotalFaults(),
				float64(r.TotalFaults())/float64(rs.TotalLen()),
				metrics.JainIndex(r.Faults),
				metrics.WeightedSpeedup(rs, r, solo), r.Makespan)
		}
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"no strategy dominates: LFU wins on zipf but collapses on phased/markov; the optimal static partition wins faults on phased at a steep fairness cost; S(LRU) and dP(LRU) coincide everywhere (Lemma 3)")
	return res, nil
}
