package experiments

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/metrics"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/workload"
)

func init() {
	register("E13", runE13)
}

// runE13 — the practical comparison the paper's introduction motivates:
// how do shared, statically partitioned, and dynamically partitioned
// strategies compare across eviction policies and workload families?
// Reported per workload: total faults, fairness (Jain index over
// per-core faults), and makespan.
func runE13(cfg Config) (*Result, error) {
	length := 4000
	if cfg.Quick {
		length = 500
	}
	p, k, tau := 4, 16, 2
	res := &Result{
		ID:    "E13",
		Title: "Policy × workload matrix (shared vs partitioned)",
		Claim: "Section 4 framing: strategies = partition policy × eviction policy; no single choice dominates",
	}
	mix, err := workload.Mix(workload.Spec{
		Cores: p, Length: length, Pages: 24, Kind: workload.Uniform, Seed: cfg.Seed + 13,
	})
	if err != nil {
		return nil, err
	}

	type entry struct {
		name string
		mk   func(rs core.RequestSet) (sim.Strategy, error)
	}
	var entries []entry
	for _, pol := range []string{"LRU", "FIFO", "CLOCK", "LFU", "MARK", "RMARK", "RAND", "ARC", "SLRU", "LRU2", "TINYLFU"} {
		pol := pol
		mk, err := cache.NewFactory(pol, cfg.Seed+99)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{
			name: "S(" + pol + ")",
			mk:   func(core.RequestSet) (sim.Strategy, error) { return policy.NewShared(mk), nil },
		})
	}
	entries = append(entries,
		entry{
			name: "sP[even](LRU)",
			mk: func(core.RequestSet) (sim.Strategy, error) {
				return policy.NewStatic(policy.EvenSizes(k, p), lruF()), nil
			},
		},
		entry{
			name: "sP[OPT](LRU)",
			mk: func(rs core.RequestSet) (sim.Strategy, error) {
				part, err := mattson.OptimalLRU(rs, k)
				if err != nil {
					return nil, err
				}
				return policy.NewStatic(part.Sizes, lruF()), nil
			},
		},
		entry{
			name: "dP[lru-global](LRU)",
			mk:   func(core.RequestSet) (sim.Strategy, error) { return policy.NewDynamicLRU(), nil },
		},
		entry{
			name: "S(FWF)",
			mk:   func(core.RequestSet) (sim.Strategy, error) { return policy.NewFWF(), nil },
		},
		entry{
			name: "dP[ucp](LRU)",
			mk:   func(core.RequestSet) (sim.Strategy, error) { return policy.NewUCP(128), nil },
		},
		entry{
			name: "dP[fair](LRU)",
			mk:   func(core.RequestSet) (sim.Strategy, error) { return policy.NewFairShare(128), nil },
		},
	)

	for _, kind := range workload.Kinds() {
		rs := mix[kind]
		params := core.Params{K: k, Tau: tau}
		// Solo baselines for weighted speedup: each core alone with the
		// full cache under LRU.
		solo := make([]int64, p)
		for j := range rs {
			one := core.Instance{R: core.RequestSet{rs[j]}, P: params}
			sr, err := sim.Run(one, sharedLRU(), nil)
			if err != nil {
				return nil, err
			}
			solo[j] = sr.Finish[0]
		}
		// Every strategy row replays the same workload, so one runner
		// serves the whole column: the occurrence index is built once.
		rn, err := sim.NewRunner(rs)
		if err != nil {
			return nil, err
		}
		tbl := metrics.NewTable(
			fmt.Sprintf("workload=%s (p=%d, K=%d, τ=%d, n=%d)", kind, p, k, tau, rs.TotalLen()),
			"strategy", "faults", "fault_rate", "jain_fairness", "weighted_speedup", "makespan")
		for _, e := range entries {
			st, err := e.mk(rs)
			if err != nil {
				return nil, err
			}
			r, err := rn.Run(params, st, nil)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(e.name, r.TotalFaults(),
				float64(r.TotalFaults())/float64(rs.TotalLen()),
				metrics.JainIndex(r.Faults),
				metrics.WeightedSpeedup(rs, r, solo), r.Makespan)
		}
		res.Tables = append(res.Tables, tbl)
	}
	res.Notes = append(res.Notes,
		"no strategy dominates: LFU wins on zipf but collapses on phased/markov; the optimal static partition wins faults on phased at a steep fairness cost; S(LRU) and dP[lru-global](LRU) coincide everywhere (Lemma 3)")
	return res, nil
}
