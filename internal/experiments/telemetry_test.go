package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWithTelemetryExports runs one quick experiment with telemetry
// enabled and checks that every simulation produced a complete,
// well-formed export directory.
func TestWithTelemetryExports(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Quick: true, Seed: 7}.WithTelemetry(dir, 64)
	r, err := Get("E1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r(cfg); err != nil {
		t.Fatal(err)
	}
	runs, err := filepath.Glob(filepath.Join(dir, "E1", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no export directories under E1/")
	}
	for _, run := range runs {
		for _, f := range []string{"manifest.json", "windows.jsonl", "summary.csv", "metrics.prom"} {
			if _, err := os.Stat(filepath.Join(run, f)); err != nil {
				t.Errorf("%s missing %s: %v", filepath.Base(run), f, err)
			}
		}
	}
	// Directory labels are sequential and the manifest pins the source
	// experiment and window.
	if base := filepath.Base(runs[0]); base[:3] != "00_" {
		t.Fatalf("first run directory %q, want 00_ prefix", base)
	}
	raw, err := os.ReadFile(filepath.Join(runs[0], "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Tool   string `json:"tool"`
		Source string `json:"source"`
		Window int64  `json:"window"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Tool != "mcexp" || m.Source != "E1" || m.Window != 64 {
		t.Fatalf("manifest = %+v, want tool=mcexp source=E1 window=64", m)
	}
}

// TestWithTelemetryOff checks the zero-config path: without
// WithTelemetry, experiments run without touching the filesystem.
func TestWithTelemetryOff(t *testing.T) {
	r, err := Get("E1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r(Config{Quick: true, Seed: 7}); err != nil {
		t.Fatal(err)
	}
}
