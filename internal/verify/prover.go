package verify

import (
	"fmt"
	"sync"

	"mcpaging/internal/core"
	"mcpaging/internal/offline"
	"mcpaging/internal/sim"
	"mcpaging/internal/stats"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/telemetry"
	"mcpaging/internal/workload"
)

// Seed streams: every per-sample seed derives from the claim seed via
// sim.DeriveSeed(seed, stream, index), one stream per consumer, so the
// instance draw, the strategies' own randomness and the bootstrap
// resampling never alias.
const (
	streamInstance = iota
	streamStrategy
	streamBootstrap
)

// effectEps separates wins from ties under float metrics (Jain,
// ratios); integer metrics produce whole-number effects, so the epsilon
// never misclassifies them.
const effectEps = 1e-9

// maxCounterSeeds bounds how many counterexample seeds a verdict
// carries; maxWitnessSeeds likewise for supporting witnesses.
const (
	maxCounterSeeds = 8
	maxWitnessSeeds = 3
)

// Options tunes a Prover.
type Options struct {
	// Quick substitutes each claim's bounded quick_samples count — the
	// per-PR CI budget.
	Quick bool
	// SampleScale multiplies sample counts after the Quick selection
	// (nightly runs use > 1; 0 means 1).
	SampleScale float64
	// Parallel sets the speculative-engine worker ceiling on each
	// runner (sim.Runner.SetParallel); 0 keeps the sequential engine.
	// Results are identical either way.
	Parallel int
	// Workers proves that many claims concurrently (0 or 1 = serial).
	// Verdict order and content are unaffected: each claim's sampling
	// is self-contained and seeded.
	Workers int
	// Progress, when non-nil, receives one line per finished claim.
	Progress func(v Verdict)
}

// Prover samples claims and renders verdicts.
type Prover struct {
	opts Options
}

// NewProver returns a Prover with the given options.
func NewProver(opts Options) *Prover { return &Prover{opts: opts} }

// samplesFor resolves the effective sample count for a claim.
func (p *Prover) samplesFor(c *Claim) int {
	n := c.Samples
	if p.opts.Quick {
		n = c.quickSamples()
	}
	if p.opts.SampleScale > 0 {
		n = int(float64(n) * p.opts.SampleScale)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Prove samples one claim and renders its verdict.
func (p *Prover) Prove(c Claim) (Verdict, error) {
	if err := c.Validate(); err != nil {
		return Verdict{}, err
	}
	fam, err := workload.ParseFamily(c.Family)
	if err != nil {
		return Verdict{}, err
	}
	n := p.samplesFor(&c)
	v := Verdict{
		Claim:       c.Name,
		Family:      c.Family,
		Metric:      c.metric(),
		Baseline:    c.Baseline,
		Challenger:  c.Challenger,
		Relation:    c.Relation,
		Mode:        c.mode(),
		Margin:      c.Margin,
		Samples:     n,
		Capacity:    c.Capacity,
		ChallengerK: c.ChallengerK,
	}
	// Each side runs at its own base capacity: the baseline at K, the
	// challenger at challenger_k when set (resource augmentation). The
	// capacity schedule, when present, resolves against each base.
	baseParams, err := c.sideParams(c.K)
	if err != nil {
		return Verdict{}, fmt.Errorf("verify: claim %s: %w", c.Name, err)
	}
	chalParams := baseParams
	if c.challengerK() != c.K {
		chalParams, err = c.sideParams(c.challengerK())
		if err != nil {
			return Verdict{}, fmt.Errorf("verify: claim %s: %w", c.Name, err)
		}
	}
	var runner *sim.Runner
	effects := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		instSeed := sim.DeriveSeed(c.Seed, streamInstance, int64(i))
		rs, err := fam.Sample(instSeed)
		if err != nil {
			return Verdict{}, fmt.Errorf("verify: claim %s sample %d: %w", c.Name, i, err)
		}
		if runner == nil {
			runner, err = sim.NewRunner(rs)
		} else {
			err = runner.Bind(rs)
		}
		if err != nil {
			return Verdict{}, fmt.Errorf("verify: claim %s sample %d: %w", c.Name, i, err)
		}
		runner.SetParallel(p.opts.Parallel)
		stratSeed := sim.DeriveSeed(c.Seed, streamStrategy, int64(i))
		effect, err := p.evalSample(&c, rs, runner, baseParams, chalParams, stratSeed)
		if err != nil {
			return Verdict{}, fmt.Errorf("verify: claim %s sample %d (seed %d): %w", c.Name, i, instSeed, err)
		}
		effects = append(effects, effect)
		switch {
		case effect > effectEps:
			v.Wins++
			if len(v.WitnessSeeds) < maxWitnessSeeds {
				v.WitnessSeeds = append(v.WitnessSeeds, instSeed)
			}
		case effect < -effectEps:
			v.Losses++
			if len(v.CounterSeeds) < maxCounterSeeds {
				v.CounterSeeds = append(v.CounterSeeds, instSeed)
			}
		default:
			v.Ties++
			if len(v.WitnessSeeds) < maxWitnessSeeds {
				v.WitnessSeeds = append(v.WitnessSeeds, instSeed)
			}
		}
	}
	if runner != nil {
		runner.Release()
	}
	sum := stats.Summarize(effects)
	v.EffectMean = sum.Mean
	ci := stats.BootstrapMeanCI(effects, 0, 0.95, sim.DeriveSeed(c.Seed, streamBootstrap, 0))
	v.EffectLo, v.EffectHi = ci.Lo, ci.Hi
	v.PValue = stats.SignTest(v.Wins, v.Losses)
	v.Status = decide(&c, &v)
	return v, nil
}

// evalSample computes one paired effect: positive means the sample
// supports the claim, negative refutes it, zero is a tie.
func (p *Prover) evalSample(c *Claim, rs core.RequestSet, runner *sim.Runner, baseParams, chalParams core.Params, stratSeed int64) (float64, error) {
	base, err := p.runMetric(c, c.Baseline, rs, runner, baseParams, stratSeed)
	if err != nil {
		return 0, fmt.Errorf("baseline %s: %w", c.Baseline, err)
	}
	var chal float64
	if c.metric() == MetricOptRatio {
		chal = c.Bound
	} else {
		chal, err = p.runMetric(c, c.Challenger, rs, runner, chalParams, stratSeed)
		if err != nil {
			return 0, fmt.Errorf("challenger %s: %w", c.Challenger, err)
		}
	}
	// Orient the effect so "supports the claim" is positive.
	if c.Relation == "<=" {
		return chal - base, nil
	}
	return base - chal, nil
}

// runMetric runs one strategy over the bound request set at the given
// side's parameters and extracts the claim's metric.
func (p *Prover) runMetric(c *Claim, spec string, rs core.RequestSet, runner *sim.Runner, params core.Params, stratSeed int64) (float64, error) {
	strat, err := strategyspec.Build(spec, rs, params.K, stratSeed)
	if err != nil {
		return 0, err
	}
	var obs sim.Observer
	var col *telemetry.Collector
	if c.metric() == MetricJain {
		col = telemetry.New(telemetry.Config{Cores: rs.NumCores(), Params: params})
		obs = col.Observe
	}
	res, err := runner.Run(params, strat, obs)
	if err != nil {
		return 0, err
	}
	switch c.metric() {
	case MetricMakespan:
		return float64(res.Makespan), nil
	case MetricJain:
		col.Finish(res)
		return col.Totals().FaultJain, nil
	case MetricOptRatio:
		opt, err := offline.SolveFTF(core.Instance{R: rs, P: params}, offline.Options{})
		if err != nil {
			return 0, err
		}
		if opt.Faults == 0 {
			return 0, fmt.Errorf("offline optimum has zero faults; ratio undefined")
		}
		return float64(res.TotalFaults()) / float64(opt.Faults), nil
	default: // MetricFaults
		return float64(res.TotalFaults()), nil
	}
}

// decide aggregates sample-level outcomes into a verdict status.
func decide(c *Claim, v *Verdict) Status {
	switch c.mode() {
	case Universal:
		if v.Losses > 0 {
			return Refuted
		}
		return Holds
	default:
		alpha := c.alpha()
		if v.PValue <= alpha && v.EffectMean >= c.Margin {
			return Holds
		}
		if stats.SignTest(v.Losses, v.Wins) <= alpha {
			return Refuted
		}
		return Inconclusive
	}
}

// ProveAll proves every claim of the manifest, in manifest order, with
// Options.Workers-way concurrency across claims.
func (p *Prover) ProveAll(m *Manifest) ([]Verdict, error) {
	verdicts := make([]Verdict, len(m.Claims))
	errs := make([]error, len(m.Claims))
	workers := p.opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(m.Claims) {
		workers = len(m.Claims)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				verdicts[i], errs[i] = p.Prove(m.Claims[i])
				if errs[i] == nil && p.opts.Progress != nil {
					p.opts.Progress(verdicts[i])
				}
			}
		}()
	}
	for i := range m.Claims {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("verify: claim %s: %w", m.Claims[i].Name, err)
		}
	}
	return verdicts, nil
}
