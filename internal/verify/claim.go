// Package verify runs the paper's lemma-level claims as statistical
// hypotheses over sampled instance families and renders confidence-
// scored verdicts.
//
// The repo's analytic layer (hardness.go, internal/adversary) certifies
// each separation with one hand-picked witness; this package asks the
// complementary question — *where* do the theorems hold? A Claim is a
// falsifiable statement over simulation outcomes ("shared LRU faults at
// least as much as the even static partition on family F at K, τ"), a
// Prover samples N seeded instances of the family, runs both strategies
// through reusable sim.Runners, and condenses the paired results into a
// Verdict: HOLDS, REFUTED or INCONCLUSIVE, with a one-sided sign-test
// p-value, a bootstrap confidence interval on the effect size, and the
// exact seeds of any counterexamples, so every refutation replays as a
// deterministic witness (workload.ParseFamily(F).Sample(seed)).
//
// Everything is deterministic in the manifest: seeds derive from the
// claim seed via sim.DeriveSeed, the bootstrap is seeded, and no
// wall-clock enters a verdict, so verdict reports are byte-stable and
// CI can gate on them (cmd/mcverify).
package verify

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/workload"
)

// Metric names the per-run scalar a claim compares.
type Metric string

const (
	// MetricFaults is the paper's FTF objective: total faults.
	MetricFaults Metric = "faults"
	// MetricMakespan is the completion time of the slowest core.
	MetricMakespan Metric = "makespan"
	// MetricJain is Jain's fairness index of the per-core fault counts,
	// read from the telemetry collector's end-of-run totals.
	MetricJain Metric = "jain"
	// MetricOptRatio is baseline faults divided by the offline optimum
	// (Algorithm 1 / Theorem 6), compared against Claim.Bound instead of
	// a challenger strategy. Exponential in K and p — tiny families only.
	MetricOptRatio Metric = "opt-ratio"
)

// Mode selects how sample-level violations aggregate into a verdict.
type Mode string

const (
	// Universal claims are theorem-shaped: a single violating sample
	// refutes them, and its seed is the counterexample.
	Universal Mode = "universal"
	// Statistical claims are distribution-shaped: the verdict comes from
	// the sign test over paired wins and losses.
	Statistical Mode = "statistical"
)

// Claim is one falsifiable statement over simulation outcomes:
//
//	metric(Baseline) Relation metric(Challenger)   on Family at K, τ
//
// or, for MetricOptRatio,
//
//	faults(Baseline) / OPT  <=  Bound              on Family at K, τ.
type Claim struct {
	// Name identifies the claim in reports and baselines.
	Name string `json:"name"`
	// Doc cites the statement being tested, e.g. "Theorem 1(1)".
	Doc string `json:"doc,omitempty"`
	// Family is a workload family spec (workload.ParseFamily).
	Family string `json:"family"`
	// Metric selects the compared scalar (default faults).
	Metric Metric `json:"metric,omitempty"`
	// Baseline and Challenger are strategy specs (strategyspec.Build).
	// Challenger is empty exactly for opt-ratio claims.
	Baseline   string `json:"baseline"`
	Challenger string `json:"challenger,omitempty"`
	// Relation is "<=" or ">=": the claimed ordering of
	// metric(Baseline) against metric(Challenger).
	Relation string `json:"relation"`
	// Bound is the claimed ratio ceiling for opt-ratio claims.
	Bound float64 `json:"bound,omitempty"`
	// Margin is the mean effect size a statistical claim must clear to
	// HOLD, in the metric's units (0 = any positive effect).
	Margin float64 `json:"margin,omitempty"`
	// Mode is universal or statistical (default statistical).
	Mode Mode `json:"mode,omitempty"`
	// K and Tau are the model parameters of every run.
	K   int `json:"k"`
	Tau int `json:"tau"`
	// Capacity is an optional K(t) schedule spec (capacity
	// mini-language) applied to both runs; it is resolved against each
	// run's own base K, so percentage forms scale with ChallengerK.
	// Empty is the fixed-capacity model. Not valid for opt-ratio claims
	// (the offline solver is fixed-K).
	Capacity string `json:"capacity,omitempty"`
	// ChallengerK, when > 0, runs the challenger at that capacity
	// instead of K — resource-augmentation claims ("the challenger
	// needs 2K cells to match the baseline") in the Sleator-Tarjan /
	// Peserico sense. 0 runs both sides at K.
	ChallengerK int `json:"challenger_k,omitempty"`
	// Samples is the full-mode sample count; QuickSamples the bounded
	// CI-mode count (0 = max(8, Samples/8)).
	Samples      int `json:"samples"`
	QuickSamples int `json:"quick_samples,omitempty"`
	// Seed is the root seed all per-sample and bootstrap seeds derive
	// from (sim.DeriveSeed), making the verdict a pure function of the
	// claim.
	Seed int64 `json:"seed"`
	// Alpha is the significance level of the sign test (0 = 0.05).
	Alpha float64 `json:"alpha,omitempty"`
}

// alpha returns the effective significance level.
func (c *Claim) alpha() float64 {
	if c.Alpha > 0 {
		return c.Alpha
	}
	return 0.05
}

// mode returns the effective mode.
func (c *Claim) mode() Mode {
	if c.Mode == "" {
		return Statistical
	}
	return c.Mode
}

// metric returns the effective metric.
func (c *Claim) metric() Metric {
	if c.Metric == "" {
		return MetricFaults
	}
	return c.Metric
}

// challengerK returns the capacity the challenger runs at.
func (c *Claim) challengerK() int {
	if c.ChallengerK > 0 {
		return c.ChallengerK
	}
	return c.K
}

// sideParams builds the run parameters for one side of the claim at
// base capacity k, resolving the capacity schedule spec when set.
func (c *Claim) sideParams(k int) (core.Params, error) {
	p := core.Params{K: k, Tau: c.Tau}
	if c.Capacity != "" {
		sched, err := capacity.ParseSchedule(c.Capacity, k)
		if err != nil {
			return core.Params{}, err
		}
		p.Capacity = sched
	}
	if err := p.Validate(); err != nil {
		return core.Params{}, err
	}
	return p, nil
}

// quickSamples returns the bounded sample count for -quick runs.
func (c *Claim) quickSamples() int {
	if c.QuickSamples > 0 {
		return c.QuickSamples
	}
	n := c.Samples / 8
	if n < 8 {
		n = 8
	}
	if n > c.Samples {
		n = c.Samples
	}
	return n
}

// Validate checks the claim, including that the family spec parses and
// the strategy specs build.
func (c *Claim) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("verify: claim without a name")
	}
	if c.Samples < 1 {
		return fmt.Errorf("verify: claim %s: samples = %d, want >= 1", c.Name, c.Samples)
	}
	if c.QuickSamples < 0 || c.QuickSamples > c.Samples {
		return fmt.Errorf("verify: claim %s: quick_samples %d outside [0, %d]", c.Name, c.QuickSamples, c.Samples)
	}
	if _, err := c.sideParams(c.K); err != nil {
		return fmt.Errorf("verify: claim %s: %w", c.Name, err)
	}
	if c.ChallengerK < 0 {
		return fmt.Errorf("verify: claim %s: challenger_k = %d, want >= 0", c.Name, c.ChallengerK)
	}
	if c.ChallengerK > 0 {
		if _, err := c.sideParams(c.ChallengerK); err != nil {
			return fmt.Errorf("verify: claim %s: challenger_k: %w", c.Name, err)
		}
	}
	switch c.Relation {
	case "<=", ">=":
	default:
		return fmt.Errorf("verify: claim %s: relation %q, want \"<=\" or \">=\"", c.Name, c.Relation)
	}
	switch c.mode() {
	case Universal, Statistical:
	default:
		return fmt.Errorf("verify: claim %s: unknown mode %q", c.Name, c.Mode)
	}
	fam, err := workload.ParseFamily(c.Family)
	if err != nil {
		return fmt.Errorf("verify: claim %s: %w", c.Name, err)
	}
	// Build both strategies against a probe sample so bad specs fail at
	// manifest load, not mid-proof.
	probe, err := fam.Sample(0)
	if err != nil {
		return fmt.Errorf("verify: claim %s: %w", c.Name, err)
	}
	if _, err := strategyspec.Build(c.Baseline, probe, c.K, 0); err != nil {
		return fmt.Errorf("verify: claim %s: baseline: %w", c.Name, err)
	}
	switch c.metric() {
	case MetricFaults, MetricMakespan, MetricJain:
		if c.Challenger == "" {
			return fmt.Errorf("verify: claim %s: metric %s needs a challenger", c.Name, c.metric())
		}
		if _, err := strategyspec.Build(c.Challenger, probe, c.challengerK(), 0); err != nil {
			return fmt.Errorf("verify: claim %s: challenger: %w", c.Name, err)
		}
	case MetricOptRatio:
		if c.Challenger != "" {
			return fmt.Errorf("verify: claim %s: opt-ratio compares against bound, not a challenger", c.Name)
		}
		if c.Capacity != "" {
			return fmt.Errorf("verify: claim %s: opt-ratio is fixed-capacity (the offline solver has no K(t))", c.Name)
		}
		if c.ChallengerK > 0 {
			return fmt.Errorf("verify: claim %s: opt-ratio has no challenger to augment", c.Name)
		}
		if c.Bound <= 0 {
			return fmt.Errorf("verify: claim %s: opt-ratio needs bound > 0", c.Name)
		}
		if c.Relation != "<=" {
			return fmt.Errorf("verify: claim %s: opt-ratio supports only relation \"<=\"", c.Name)
		}
	default:
		return fmt.Errorf("verify: claim %s: unknown metric %q", c.Name, c.Metric)
	}
	return nil
}

// Manifest is a committed list of claims (verify/claims.json).
type Manifest struct {
	Claims []Claim `json:"claims"`
}

// ParseManifest decodes and validates a manifest.
func ParseManifest(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("verify: bad manifest: %w", err)
	}
	if len(m.Claims) == 0 {
		return nil, fmt.Errorf("verify: manifest has no claims")
	}
	seen := make(map[string]bool, len(m.Claims))
	for i := range m.Claims {
		c := &m.Claims[i]
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("verify: duplicate claim name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return &m, nil
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	defer f.Close()
	return ParseManifest(f)
}
