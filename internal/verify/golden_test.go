package verify

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden verdict report")

// TestGoldenVerdictReport proves the committed tiny manifest and
// requires the JSONL report to match testdata/golden_verdicts.jsonl
// byte for byte. Because every field of a Verdict is deterministic in
// the claim (seeded sampling, seeded bootstrap, no wall-clock), any
// diff here means prover semantics changed — the same property the
// mcverify CI gate relies on. Regenerate with:
//
//	go test ./internal/verify -run Golden -update
func TestGoldenVerdictReport(t *testing.T) {
	m, err := LoadManifest(filepath.Join("testdata", "claims_tiny.json"))
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := NewProver(Options{}).ProveAll(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, verdicts); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden_verdicts.jsonl")
	if *update {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("verdict report differs from golden (regenerate with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}

	// The golden fixture must exercise all three statuses, or it loses
	// its power to pin the decision logic.
	seen := map[Status]bool{}
	for _, v := range verdicts {
		seen[v.Status] = true
	}
	for _, s := range []Status{Holds, Refuted, Inconclusive} {
		if !seen[s] {
			t.Errorf("tiny manifest no longer produces a %s verdict", s)
		}
	}
}
