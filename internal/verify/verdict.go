package verify

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Status is a verdict outcome.
type Status string

const (
	// Holds: the claim's ordering is supported — every sample for
	// universal claims, significantly and beyond the margin for
	// statistical ones.
	Holds Status = "HOLDS"
	// Refuted: the opposite ordering is witnessed (universal) or
	// significant (statistical). CounterSeeds replay it.
	Refuted Status = "REFUTED"
	// Inconclusive: neither direction is significant at alpha.
	Inconclusive Status = "INCONCLUSIVE"
)

// rank orders statuses for regression comparison: higher is better.
func (s Status) rank() int {
	switch s {
	case Holds:
		return 2
	case Inconclusive:
		return 1
	default:
		return 0
	}
}

// Verdict is the machine-readable outcome of proving one claim. All
// fields are deterministic in the claim (seeded sampling, seeded
// bootstrap, no wall-clock), so verdict reports diff cleanly across
// commits.
type Verdict struct {
	Claim      string `json:"claim"`
	Family     string `json:"family"`
	Metric     Metric `json:"metric"`
	Baseline   string `json:"baseline"`
	Challenger string `json:"challenger,omitempty"`
	Relation   string `json:"relation"`
	Mode       Mode   `json:"mode"`
	Status     Status `json:"status"`
	// Capacity echoes the claim's K(t) schedule spec; ChallengerK its
	// resource-augmentation capacity. Both omitted for fixed, same-K
	// claims, keeping historical reports byte-stable.
	Capacity    string `json:"capacity,omitempty"`
	ChallengerK int    `json:"challenger_k,omitempty"`
	// Samples is the number of instances drawn; every sample is a win
	// (supports the claim), a loss (violates it) or a tie.
	Samples int `json:"samples"`
	Wins    int `json:"wins"`
	Losses  int `json:"losses"`
	Ties    int `json:"ties"`
	// PValue is the one-sided sign-test p-value for "wins dominate".
	PValue float64 `json:"p_value"`
	// EffectMean is the mean oriented effect (positive supports the
	// claim), with its 95% bootstrap interval and the margin it was
	// required to clear.
	EffectMean float64 `json:"effect_mean"`
	EffectLo   float64 `json:"effect_lo"`
	EffectHi   float64 `json:"effect_hi"`
	Margin     float64 `json:"margin"`
	// WitnessSeeds replay supporting samples; CounterSeeds replay
	// violations (workload.ParseFamily(Family).Sample(seed) rebuilds
	// the exact instance).
	WitnessSeeds []int64 `json:"witness_seeds,omitempty"`
	CounterSeeds []int64 `json:"counter_seeds,omitempty"`
}

// WriteReport writes verdicts as JSONL, one verdict per line, in the
// given order.
func WriteReport(w io.Writer, verdicts []Verdict) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range verdicts {
		if err := enc.Encode(&verdicts[i]); err != nil {
			return fmt.Errorf("verify: writing report: %w", err)
		}
	}
	return bw.Flush()
}

// ReadReport parses a JSONL verdict report.
func ReadReport(r io.Reader) ([]Verdict, error) {
	var out []Verdict
	dec := json.NewDecoder(r)
	for {
		var v Verdict
		if err := dec.Decode(&v); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("verify: bad report: %w", err)
		}
		out = append(out, v)
	}
}

// BaselineEntry records the committed expected statuses of one claim,
// per prover mode. Quick and full runs are both deterministic, so the
// entries are exact expectations, not flaky thresholds.
type BaselineEntry struct {
	Full  Status `json:"full"`
	Quick Status `json:"quick"`
}

// Baseline is the committed verdict baseline (verify/baseline.json)
// the CI gate compares against.
type Baseline struct {
	Claims map[string]BaselineEntry `json:"claims"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	defer f.Close()
	var b Baseline
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("verify: bad baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline renders a baseline deterministically (sorted keys,
// indented) so the committed file diffs cleanly.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b) // json.Marshal sorts map keys
}

// Merge folds one mode's verdicts into the baseline, creating entries
// as needed and leaving the other mode's statuses untouched.
func (b *Baseline) Merge(verdicts []Verdict, quick bool) {
	if b.Claims == nil {
		b.Claims = make(map[string]BaselineEntry, len(verdicts))
	}
	for _, v := range verdicts {
		e := b.Claims[v.Claim]
		if quick {
			e.Quick = v.Status
		} else {
			e.Full = v.Status
		}
		b.Claims[v.Claim] = e
	}
}

// Regression is one confidence regression against the baseline.
type Regression struct {
	Claim string
	// Was and Now are the baseline and observed statuses; a regression
	// is a strict rank drop (HOLDS > INCONCLUSIVE > REFUTED).
	Was, Now Status
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s -> %s", r.Claim, r.Was, r.Now)
}

// Compare checks verdicts against the baseline for the given mode and
// returns the confidence regressions, sorted by claim name. Claims
// missing from the baseline are not regressions (new claims merge in
// via -update-baseline); a baseline entry whose mode status is empty is
// skipped likewise.
func (b *Baseline) Compare(verdicts []Verdict, quick bool) []Regression {
	var out []Regression
	for _, v := range verdicts {
		e, ok := b.Claims[v.Claim]
		if !ok {
			continue
		}
		want := e.Full
		if quick {
			want = e.Quick
		}
		if want == "" {
			continue
		}
		if v.Status.rank() < want.rank() {
			out = append(out, Regression{Claim: v.Claim, Was: want, Now: v.Status})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Claim < out[j].Claim })
	return out
}

// AnyRefuted reports whether any verdict is REFUTED.
func AnyRefuted(verdicts []Verdict) bool {
	for _, v := range verdicts {
		if v.Status == Refuted {
			return true
		}
	}
	return false
}
