package verify

import (
	"reflect"
	"strings"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/workload"
)

// fastClaim is a small statistical claim used across prover tests: on
// the thm1 adversary construction shared LRU beats the even static
// partition on every draw, so it resolves HOLDS quickly.
func fastClaim() Claim {
	return Claim{
		Name:       "fast",
		Family:     "thm1(p=2,k=4,tau=1,x=4)",
		Baseline:   "S(LRU)",
		Challenger: "sP[even](LRU)",
		Relation:   "<=",
		K:          4,
		Tau:        1,
		Samples:    10,
		Seed:       7,
	}
}

func TestClaimValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Claim)
		want   string
	}{
		{func(c *Claim) { c.Name = "" }, "without a name"},
		{func(c *Claim) { c.Samples = 0 }, "samples"},
		{func(c *Claim) { c.QuickSamples = 99 }, "quick_samples"},
		{func(c *Claim) { c.K = 0 }, "claim fast"},
		{func(c *Claim) { c.Relation = "<" }, "relation"},
		{func(c *Claim) { c.Mode = "sometimes" }, "unknown mode"},
		{func(c *Claim) { c.Family = "nope(x=1)" }, "unknown family"},
		{func(c *Claim) { c.Baseline = "Q(LRU)" }, "baseline"},
		{func(c *Claim) { c.Challenger = "S(WAT)" }, "challenger"},
		{func(c *Claim) { c.Challenger = "" }, "needs a challenger"},
		{func(c *Claim) { c.Metric = "latency" }, "unknown metric"},
		{func(c *Claim) { c.Metric = MetricOptRatio; c.Bound = 2 }, "not a challenger"},
		{func(c *Claim) { c.Metric = MetricOptRatio; c.Challenger = "" }, "bound > 0"},
		{func(c *Claim) {
			c.Metric = MetricOptRatio
			c.Challenger = ""
			c.Bound = 2
			c.Relation = ">="
		}, "only relation"},
	}
	for _, tc := range cases {
		c := fastClaim()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("Validate accepted a bad claim (want error containing %q)", tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate error %q does not contain %q", err, tc.want)
		}
	}
	c := fastClaim()
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate rejected the reference claim: %v", err)
	}
}

func TestParseManifestErrors(t *testing.T) {
	cases := []struct {
		json string
		want string
	}{
		{`{"claims": []}`, "no claims"},
		{`{"claimz": []}`, "bad manifest"},
		{`{"claims": [{"name": "a", "family": "zipf", "baseline": "S(LRU)",
		   "challenger": "S(FITF)", "relation": ">=", "k": 4, "tau": 1,
		   "samples": 2, "seed": 1, "surprise": true}]}`, "bad manifest"},
	}
	for _, tc := range cases {
		if _, err := ParseManifest(strings.NewReader(tc.json)); err == nil {
			t.Errorf("ParseManifest accepted %s", tc.json)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseManifest error %q does not contain %q", err, tc.want)
		}
	}

	// Duplicate names are rejected.
	one := `{"name": "dup", "family": "thm1(p=2,k=4,tau=1,x=4)",
	         "baseline": "S(LRU)", "challenger": "sP[even](LRU)",
	         "relation": "<=", "k": 4, "tau": 1, "samples": 2, "seed": 1}`
	if _, err := ParseManifest(strings.NewReader(`{"claims": [` + one + `,` + one + `]}`)); err == nil {
		t.Error("ParseManifest accepted duplicate claim names")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate-name error: %v", err)
	}
}

func TestQuickSamplesDefault(t *testing.T) {
	c := Claim{Samples: 100}
	if got := c.quickSamples(); got != 12 {
		t.Errorf("quickSamples(100) = %d, want 12", got)
	}
	c = Claim{Samples: 4}
	if got := c.quickSamples(); got != 4 {
		t.Errorf("quickSamples(4) = %d, want 4 (capped at samples)", got)
	}
	c = Claim{Samples: 100, QuickSamples: 20}
	if got := c.quickSamples(); got != 20 {
		t.Errorf("explicit quickSamples = %d, want 20", got)
	}
}

// TestProveDeterministic: the verdict is a pure function of the claim —
// across repeated runs, across the speculative engine, and across
// worker counts.
func TestProveDeterministic(t *testing.T) {
	c := fastClaim()
	a, err := NewProver(Options{}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewProver(Options{}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated Prove differs:\n%+v\n%+v", a, b)
	}
	par, err := NewProver(Options{Parallel: 4}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, par) {
		t.Errorf("speculative engine changed the verdict:\n%+v\n%+v", a, par)
	}
	if a.Status != Holds {
		t.Errorf("reference claim status = %s, want HOLDS", a.Status)
	}
	if a.Wins != c.Samples || a.Losses != 0 {
		t.Errorf("reference claim tallied %d/%d/%d", a.Wins, a.Losses, a.Ties)
	}
	if len(a.WitnessSeeds) == 0 {
		t.Error("HOLDS verdict carries no witness seeds")
	}
}

func TestProveAllWorkerInvariance(t *testing.T) {
	m := &Manifest{Claims: []Claim{fastClaim()}}
	c2 := fastClaim()
	c2.Name = "fast2"
	c2.Seed = 8
	m.Claims = append(m.Claims, c2)
	serial, err := NewProver(Options{Workers: 1}).ProveAll(m)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := NewProver(Options{Workers: 4}).ProveAll(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, conc) {
		t.Errorf("worker count changed verdicts:\n%+v\n%+v", serial, conc)
	}
	if serial[0].Claim != "fast" || serial[1].Claim != "fast2" {
		t.Errorf("verdicts out of manifest order: %s, %s", serial[0].Claim, serial[1].Claim)
	}
}

// TestUniversalRefutedReplays: the reverse of the thm1 ordering is
// refuted, and its counterexample seeds replay the violation exactly.
func TestUniversalRefutedReplays(t *testing.T) {
	c := fastClaim()
	c.Name = "reverse"
	c.Baseline = "sP[even](LRU)"
	c.Challenger = "S(LRU)"
	c.Mode = Universal
	v, err := NewProver(Options{}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != Refuted {
		t.Fatalf("reverse claim status = %s, want REFUTED", v.Status)
	}
	if len(v.CounterSeeds) == 0 {
		t.Fatal("REFUTED verdict carries no counterexample seeds")
	}

	// Replay the first counterexample from its seed alone.
	fam, err := workload.ParseFamily(c.Family)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := fam.Sample(v.CounterSeeds[0])
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: c.K, Tau: c.Tau}
	faults := func(spec string) int64 {
		st, err := strategyspec.Build(spec, rs, c.K, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(core.Instance{R: rs, P: params}, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalFaults()
	}
	if even, shared := faults(c.Baseline), faults(c.Challenger); even <= shared {
		t.Errorf("counterexample does not replay: even=%d <= shared=%d", even, shared)
	}
}

func TestStatisticalMarginInconclusive(t *testing.T) {
	c := fastClaim()
	c.Margin = 1e9 // ordering holds, but no finite sample clears this
	v, err := NewProver(Options{}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != Inconclusive {
		t.Errorf("margin-gated claim status = %s, want INCONCLUSIVE", v.Status)
	}
	if v.Losses != 0 {
		t.Errorf("ordering unexpectedly violated: %d losses", v.Losses)
	}
}

func TestQuickAndScaleOptions(t *testing.T) {
	c := fastClaim()
	c.Samples = 32
	c.QuickSamples = 4
	v, err := NewProver(Options{Quick: true}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Samples != 4 {
		t.Errorf("quick samples = %d, want 4", v.Samples)
	}
	v, err = NewProver(Options{Quick: true, SampleScale: 2}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Samples != 8 {
		t.Errorf("scaled quick samples = %d, want 8", v.Samples)
	}
}

func TestReportRoundTrip(t *testing.T) {
	in := []Verdict{
		{Claim: "a", Status: Holds, Samples: 3, Wins: 3, PValue: 0.125,
			WitnessSeeds: []int64{1, 2}},
		{Claim: "b", Status: Refuted, Samples: 3, Losses: 3, PValue: 1,
			CounterSeeds: []int64{-9}},
	}
	var buf strings.Builder
	if err := WriteReport(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("report round trip:\n%+v\n%+v", in, out)
	}
	if _, err := ReadReport(strings.NewReader("{not json")); err == nil {
		t.Error("ReadReport accepted malformed JSONL")
	}
}

func TestBaselineCompare(t *testing.T) {
	b := &Baseline{Claims: map[string]BaselineEntry{
		"a": {Full: Holds, Quick: Holds},
		"b": {Full: Holds, Quick: Inconclusive},
		"c": {Full: Inconclusive},
	}}
	verdicts := []Verdict{
		{Claim: "a", Status: Inconclusive}, // regression in both modes
		{Claim: "b", Status: Inconclusive}, // regression in full only
		{Claim: "c", Status: Refuted},      // full regression; quick skipped
		{Claim: "new", Status: Refuted},    // not in baseline: never a regression
	}
	full := b.Compare(verdicts, false)
	want := []Regression{
		{Claim: "a", Was: Holds, Now: Inconclusive},
		{Claim: "b", Was: Holds, Now: Inconclusive},
		{Claim: "c", Was: Inconclusive, Now: Refuted},
	}
	if !reflect.DeepEqual(full, want) {
		t.Errorf("full Compare = %+v, want %+v", full, want)
	}
	quick := b.Compare(verdicts, true)
	want = []Regression{{Claim: "a", Was: Holds, Now: Inconclusive}}
	if !reflect.DeepEqual(quick, want) {
		t.Errorf("quick Compare = %+v, want %+v", quick, want)
	}
	if s := quick[0].String(); s != "a: HOLDS -> INCONCLUSIVE" {
		t.Errorf("Regression.String() = %q", s)
	}

	// Improvements are not regressions.
	if got := b.Compare([]Verdict{{Claim: "c", Status: Holds}}, false); len(got) != 0 {
		t.Errorf("improvement reported as regression: %+v", got)
	}
}

func TestBaselineMerge(t *testing.T) {
	b := &Baseline{}
	b.Merge([]Verdict{{Claim: "a", Status: Holds}}, true)
	b.Merge([]Verdict{{Claim: "a", Status: Inconclusive}}, false)
	got := b.Claims["a"]
	if got.Quick != Holds || got.Full != Inconclusive {
		t.Errorf("merged entry = %+v", got)
	}
}

func TestAnyRefuted(t *testing.T) {
	if AnyRefuted([]Verdict{{Status: Holds}, {Status: Inconclusive}}) {
		t.Error("AnyRefuted true without refutations")
	}
	if !AnyRefuted([]Verdict{{Status: Holds}, {Status: Refuted}}) {
		t.Error("AnyRefuted missed a refutation")
	}
}

func TestJainMetricClaim(t *testing.T) {
	c := Claim{
		Name:       "jain",
		Family:     "mixed(cores=3,length=512,pages=32)",
		Metric:     MetricJain,
		Baseline:   "dP[fair](LRU)",
		Challenger: "sP[even](LRU)",
		Relation:   ">=",
		K:          8,
		Tau:        1,
		Samples:    4,
		Seed:       3,
	}
	v, err := NewProver(Options{}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Wins+v.Losses+v.Ties != 4 {
		t.Errorf("jain claim tally %d/%d/%d does not cover 4 samples", v.Wins, v.Losses, v.Ties)
	}
}

func TestOptRatioClaim(t *testing.T) {
	c := Claim{
		Name:     "ratio",
		Family:   "uniform(cores=2,length=12,pages=3)",
		Metric:   MetricOptRatio,
		Baseline: "dP(LRU)",
		Relation: "<=",
		Bound:    8,
		K:        2,
		Tau:      1,
		Samples:  3,
		Seed:     4,
	}
	v, err := NewProver(Options{}).Prove(c)
	if err != nil {
		t.Fatal(err)
	}
	// A ratio can never exceed 8x on these tiny instances; the effect is
	// bound - ratio, so every sample must support the claim.
	if v.Losses != 0 {
		t.Errorf("opt-ratio bound 8 violated: %d losses (counter seeds %v)", v.Losses, v.CounterSeeds)
	}
}
