package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/server"
	"mcpaging/internal/sweep"
)

// DispatcherConfig parameterises cell routing.
type DispatcherConfig struct {
	// MaxInflight bounds the cells in flight fleet-wide (0 = 4 per
	// worker). The sweep submitter blocks on this bound — the
	// coordinator-side half of end-to-end backpressure.
	MaxInflight int
	// WorkerInflight bounds the cells in flight on one worker (0 = 4).
	// The ring owner may always fill this bound; non-owners accept
	// spilled cells only up to the bound scaled by their latency
	// weight, so slow members shed borrowed work first.
	WorkerInflight int
	// RetryRounds is how many full failover rotations a cell attempts
	// after the first before giving up (0 = 3). Between rounds the
	// dispatcher backs off, which doubles as the window for probes to
	// resurrect a recovered worker.
	RetryRounds int
	// RoundBackoff shapes the between-rounds delay (Attempts unused).
	RoundBackoff Backoff
	// AcquirePoll is the poll period while blocking on the ring
	// owner's inflight bound (0 = 2ms).
	AcquirePoll time.Duration
	// MaxRequests bounds a resolved trace (0 = 8M), mirroring
	// mcservd's budget so the coordinator rejects oversized sweeps
	// before touching any worker.
	MaxRequests int
	// JitterSeed decorrelates the dispatcher's backoff jitter.
	JitterSeed int64
}

func (c DispatcherConfig) withDefaults(workers int) DispatcherConfig {
	if c.WorkerInflight <= 0 {
		c.WorkerInflight = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = c.WorkerInflight * workers
	}
	if c.RetryRounds <= 0 {
		c.RetryRounds = 3
	}
	c.RoundBackoff = c.RoundBackoff.withDefaults()
	if c.AcquirePoll <= 0 {
		c.AcquirePoll = 2 * time.Millisecond
	}
	if c.MaxRequests <= 0 {
		c.MaxRequests = 8 << 20
	}
	return c
}

// Dispatcher routes jobs and sweep cells onto the fleet: ring-affine
// placement, bounded inflight, retry/failover, and canonical-order
// re-merge of sweep streams.
type Dispatcher struct {
	cfg   DispatcherConfig
	reg   *Registry
	clock Clock
	met   *fleetMetrics

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewDispatcher builds a dispatcher over the registry's fleet.
func NewDispatcher(reg *Registry, cfg DispatcherConfig, clk Clock, met *fleetMetrics) *Dispatcher {
	if clk == nil {
		clk = SystemClock
	}
	if met == nil {
		met = &fleetMetrics{}
	}
	return &Dispatcher{
		cfg:   cfg.withDefaults(len(reg.ids)),
		reg:   reg,
		clock: clk,
		met:   met,
		rng:   rand.New(rand.NewSource(cfg.JitterSeed)),
	}
}

// RunJob resolves one job request, routes it to the ring owner of its
// content-addressed key (failing over along the ring), and returns the
// worker's response plus the serving worker's ID.
func (d *Dispatcher) RunJob(ctx context.Context, req server.JobRequest) (server.JobResponse, string, error) {
	rs, err := req.Trace.Resolve(d.cfg.MaxRequests)
	if err != nil {
		return server.JobResponse{}, "", errPermanent{status: http.StatusBadRequest, msg: err.Error()}
	}
	params := core.Params{K: req.K, Tau: req.Tau}
	if req.Capacity != "" {
		// Portable families only: a tenant-supplied spec must never name
		// a file on the coordinator or a worker.
		sched, serr := capacity.ParsePortableSchedule(req.Capacity, req.K)
		if serr != nil {
			return server.JobResponse{}, "", errPermanent{status: http.StatusBadRequest, msg: serr.Error()}
		}
		params.Capacity = sched
	}
	if err := params.Validate(); err != nil {
		return server.JobResponse{}, "", errPermanent{status: http.StatusBadRequest, msg: err.Error()}
	}
	key := server.JobKey(rs, req.Strategy, params, req.Seed)
	d.met.jobs.Add(1)
	return d.routeCell(ctx, key, req)
}

// routeCell places one keyed job on the fleet. The ring owner is tried
// first with a blocking slot acquire (backpressure); ring successors
// absorb spill and failover, gated by their latency-weighted inflight
// bound. Hard failures mark the worker down and advance along the
// ring; exhausted rotations back off and retry, giving probes a chance
// to resurrect members.
func (d *Dispatcher) routeCell(ctx context.Context, key string, req server.JobRequest) (server.JobResponse, string, error) {
	var lastErr error
	for round := 0; ; round++ {
		cands := d.reg.candidates(key)
		for i, w := range cands {
			if i == 0 {
				// The owner: wait for a slot rather than scatter —
				// its cache is where this key lives.
				if err := d.acquireWait(ctx, w, int64(d.cfg.WorkerInflight)); err != nil {
					return server.JobResponse{}, "", err
				}
			} else {
				limit := int64(float64(d.cfg.WorkerInflight) * d.reg.weight(w.client.ID()))
				if limit < 1 {
					limit = 1
				}
				if !w.tryAcquire(limit) {
					continue
				}
			}
			start := d.clock.Now()
			resp, remoteID, err := w.client.RunJob(ctx, req)
			rtt := d.clock.Now().Sub(start)
			w.release()
			switch {
			case err == nil:
				d.reg.markRouteSuccess(w.client.ID(), remoteID, rtt)
				if i == 0 {
					d.met.routedOwner.Add(1)
				} else {
					d.met.routedSpill.Add(1)
				}
				return resp, w.client.ID(), nil
			case errors.As(err, &errPermanent{}):
				return server.JobResponse{}, w.client.ID(), err
			case errors.Is(err, errWorkerBusy):
				d.reg.markRouteDraining(w.client.ID())
				lastErr = err
			case ctx.Err() != nil:
				return server.JobResponse{}, "", ctx.Err()
			default:
				d.reg.markRouteDown(w.client.ID())
				d.met.failovers.Add(1)
				lastErr = err
			}
		}
		if round >= d.cfg.RetryRounds {
			if lastErr == nil {
				lastErr = errWorkerBusy
			}
			return server.JobResponse{}, "", fmt.Errorf("fleet: cell %.16s failed after %d rounds: %w", key, round+1, lastErr)
		}
		d.met.retryRounds.Add(1)
		if err := sleep(ctx, d.clock, d.roundDelay(round)); err != nil {
			return server.JobResponse{}, "", err
		}
	}
}

// acquireWait blocks until w has a free inflight slot or ctx ends.
func (d *Dispatcher) acquireWait(ctx context.Context, w *workerState, limit int64) error {
	for !w.tryAcquire(limit) {
		if err := sleep(ctx, d.clock, d.cfg.AcquirePoll); err != nil {
			return err
		}
	}
	return nil
}

// roundDelay is the jittered between-rounds backoff.
func (d *Dispatcher) roundDelay(round int) time.Duration {
	b := d.cfg.RoundBackoff
	delay := b.Base << round
	if delay > b.Cap || delay <= 0 {
		delay = b.Cap
	}
	d.rngMu.Lock()
	defer d.rngMu.Unlock()
	return delay/2 + time.Duration(d.rng.Int63n(int64(delay/2)+1))
}

// Sweep fans req's grid across the fleet and streams one SweepLine per
// cell to w as JSONL in canonical grid order (K-major, then τ, then
// spec — sweep.Cells order, byte-compatible with mcservd's own
// /v1/sweep stream). Cells are submitted in grid order under the
// fleet-wide inflight bound (blocking enqueue); results arriving out
// of order are re-merged by the emit loop, which waits on each cell in
// turn. Returns the cell count on success for admission accounting.
func (d *Dispatcher) Sweep(ctx context.Context, req server.SweepRequest, w io.Writer) error {
	rs, grid, err := d.ResolveGrid(req)
	if err != nil {
		return err
	}
	return d.sweepResolved(ctx, rs, grid, req, w)
}

// ResolveGrid materialises and validates a sweep request's workload
// and grid. Validation errors are permanent (tenant errors), never
// worker failures.
func (d *Dispatcher) ResolveGrid(req server.SweepRequest) (core.RequestSet, sweep.Grid, error) {
	rs, err := req.Trace.Resolve(d.cfg.MaxRequests)
	if err != nil {
		return nil, sweep.Grid{}, errPermanent{status: http.StatusBadRequest, msg: err.Error()}
	}
	grid := sweep.Grid{R: rs, Ks: req.Ks, Taus: req.Taus, Capacities: req.Capacities,
		Specs: req.Strategies, Seed: req.Seed, PortableOnly: true}
	if err := grid.Validate(); err != nil {
		return nil, sweep.Grid{}, errPermanent{status: http.StatusBadRequest, msg: err.Error()}
	}
	return rs, grid, nil
}

// sweepResolved is Sweep after resolution — the gateway calls this so
// it can admit on the cell count before any worker is touched.
func (d *Dispatcher) sweepResolved(ctx context.Context, rs core.RequestSet, grid sweep.Grid, req server.SweepRequest, w io.Writer) error {
	cells := grid.Cells()
	d.met.sweeps.Add(1)

	type slot struct {
		line server.SweepLine
	}
	results := make([]chan slot, len(cells))
	for i := range results {
		results[i] = make(chan slot, 1)
	}
	// Cells forward the compact input form; workers resolve it
	// themselves and arrive at the same content-addressed key.
	jobOf := func(c sweep.Cell) server.JobRequest {
		return server.JobRequest{Trace: req.Trace, Strategy: c.Spec, K: c.K, Tau: c.Tau,
			Capacity: c.Capacity, Seed: req.Seed}
	}

	sem := make(chan struct{}, d.cfg.MaxInflight)
	go func() {
		for i := range cells {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				// Emit loop sees ctx.Done too; unstarted cells need no
				// line. Started cells drain via their own ctx checks.
				return
			}
			i, c := i, cells[i]
			go func() {
				defer func() { <-sem }()
				d.met.cellsInflight.Add(1)
				defer d.met.cellsInflight.Add(-1)
				params := core.Params{K: c.K, Tau: c.Tau}
				line := server.SweepLine{K: c.K, Tau: c.Tau, Capacity: c.Capacity, Spec: c.Spec}
				if c.Capacity != "" {
					// Grid.Validate (PortableOnly) parsed this pair already,
					// but fail the cell rather than discard the error: a
					// silently nil schedule would key and route the cell as
					// fixed-capacity while the forwarded request still
					// carries the elastic spec.
					sched, serr := capacity.ParsePortableSchedule(c.Capacity, c.K)
					if serr != nil {
						d.met.cellErrors.Add(1)
						line.Error = serr.Error()
						results[i] <- slot{line: line}
						return
					}
					params.Capacity = sched
				}
				key := server.JobKey(rs, c.Spec, params, req.Seed)
				line.Key = key
				resp, _, err := d.routeCell(ctx, key, jobOf(c))
				if err != nil {
					d.met.cellErrors.Add(1)
					line.Error = err.Error()
				} else {
					d.met.cells.Add(1)
					line.Cached = resp.Cached
					line.Result = &resp.Result
				}
				results[i] <- slot{line: line}
			}()
		}
	}()

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range cells {
		select {
		case s := <-results[i]:
			if err := enc.Encode(s.line); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
