package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mcpaging/internal/server"
)

// Backoff parameterises the retry schedule a Client applies to
// retryable worker responses (429 queue-full, 503 draining). The delay
// for attempt a is min(Cap, Base<<a) with full jitter on the upper
// half, raised to the worker's Retry-After hint when that is larger —
// the hint is the worker's own estimate of when capacity returns, so
// backing off less would just bounce again.
type Backoff struct {
	Base time.Duration // 0 = 50ms
	Cap  time.Duration // 0 = 5s
	// Attempts bounds how many times one call retries a retryable
	// status before giving up with errWorkerBusy (0 = 3).
	Attempts int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Cap <= 0 {
		b.Cap = 5 * time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	return b
}

// errWorkerDown marks transport failures and unexpected 5xx responses:
// the worker is presumed gone and the caller should fail over to the
// next ring member.
var errWorkerDown = errors.New("fleet: worker unreachable")

// errWorkerBusy marks a worker that is alive but refusing work (queue
// full or draining) beyond the client's retry budget; the caller may
// try another member and come back later.
var errWorkerBusy = errors.New("fleet: worker saturated or draining")

// errPermanent wraps 4xx worker responses: the request itself is bad
// (malformed trace, unknown strategy), so no amount of failover helps
// and the error is surfaced to the tenant as-is.
type errPermanent struct {
	status int
	msg    string
}

func (e errPermanent) Error() string { return e.msg }

// StatusCode returns the worker's HTTP status for gateway passthrough.
func (e errPermanent) StatusCode() int { return e.status }

// Client is the coordinator's HTTP client for one mcservd worker.
type Client struct {
	base    string
	httpc   *http.Client
	clock   Clock
	backoff Backoff

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewClient builds a client for the worker at baseURL (no trailing
// slash). httpc may be shared between clients; nil uses a dedicated
// client with sane timeouts. jitterSeed seeds the backoff jitter — the
// fleet derives per-worker seeds so jitter is decorrelated across
// clients yet reproducible in tests.
func NewClient(baseURL string, httpc *http.Client, clk Clock, b Backoff, jitterSeed int64) *Client {
	if httpc == nil {
		httpc = &http.Client{Timeout: 5 * time.Minute}
	}
	if clk == nil {
		clk = SystemClock
	}
	return &Client{
		base:    baseURL,
		httpc:   httpc,
		clock:   clk,
		backoff: b.withDefaults(),
		rng:     rand.New(rand.NewSource(jitterSeed)),
	}
}

// ID returns the worker's identity in the fleet: its base URL.
func (c *Client) ID() string { return c.base }

// RunJob posts one job to the worker, retrying retryable statuses
// under the backoff schedule. It returns the decoded response plus the
// worker's Fleet-Worker-ID header (its self-reported identity).
func (c *Client) RunJob(ctx context.Context, req server.JobRequest) (server.JobResponse, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return server.JobResponse{}, "", err
	}
	var retries int
	for {
		resp, remoteID, retryAfter, err := c.postOnce(ctx, bytes.NewReader(body))
		if err == nil {
			return resp, remoteID, nil
		}
		if !errors.Is(err, errWorkerBusy) || retries >= c.backoff.Attempts {
			return server.JobResponse{}, remoteID, err
		}
		if serr := sleep(ctx, c.clock, c.delay(retries, retryAfter)); serr != nil {
			return server.JobResponse{}, remoteID, serr
		}
		retries++
	}
}

// postOnce performs a single POST /v1/jobs round trip and classifies
// the outcome into the fleet's error taxonomy.
func (c *Client) postOnce(ctx context.Context, body io.Reader) (server.JobResponse, string, time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", body)
	if err != nil {
		return server.JobResponse{}, "", 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return server.JobResponse{}, "", 0, ctx.Err()
		}
		return server.JobResponse{}, "", 0, fmt.Errorf("%w: %s: %v", errWorkerDown, c.base, err)
	}
	defer hresp.Body.Close()
	remoteID := hresp.Header.Get("Fleet-Worker-ID")
	switch {
	case hresp.StatusCode == http.StatusOK:
		var out server.JobResponse
		if derr := json.NewDecoder(hresp.Body).Decode(&out); derr != nil {
			return server.JobResponse{}, remoteID, 0, fmt.Errorf("%w: %s: decoding response: %v", errWorkerDown, c.base, derr)
		}
		return out, remoteID, 0, nil
	case hresp.StatusCode == http.StatusTooManyRequests || hresp.StatusCode == http.StatusServiceUnavailable:
		return server.JobResponse{}, remoteID, parseRetryAfter(hresp.Header.Get("Retry-After")),
			fmt.Errorf("%w: %s: %s", errWorkerBusy, c.base, readError(hresp.Body))
	case hresp.StatusCode >= 400 && hresp.StatusCode < 500:
		return server.JobResponse{}, remoteID, 0, errPermanent{status: hresp.StatusCode, msg: readError(hresp.Body)}
	default:
		return server.JobResponse{}, remoteID, 0,
			fmt.Errorf("%w: %s: unexpected status %d: %s", errWorkerDown, c.base, hresp.StatusCode, readError(hresp.Body))
	}
}

// Ready probes GET /readyz. It reports the probe's round-trip time on
// success; a 503 is errWorkerBusy (alive but draining), anything else
// errWorkerDown.
func (c *Client) Ready(ctx context.Context) (time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return 0, err
	}
	start := c.clock.Now()
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		return 0, fmt.Errorf("%w: %s: %v", errWorkerDown, c.base, err)
	}
	defer hresp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(hresp.Body, 1024))
	rtt := c.clock.Now().Sub(start)
	switch hresp.StatusCode {
	case http.StatusOK:
		return rtt, nil
	case http.StatusServiceUnavailable:
		return rtt, fmt.Errorf("%w: %s: draining", errWorkerBusy, c.base)
	default:
		return rtt, fmt.Errorf("%w: %s: /readyz status %d", errWorkerDown, c.base, hresp.StatusCode)
	}
}

// Get proxies a GET of path (e.g. /strategies) and returns the raw
// body for passthrough.
func (c *Client) Get(ctx context.Context, path string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", errWorkerDown, c.base, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: %s: %s status %d", errWorkerDown, c.base, path, hresp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
}

// delay computes the attempt'th backoff delay: exponential with full
// jitter on the upper half, floored at the worker's Retry-After hint.
func (c *Client) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := c.backoff.Base << attempt
	if d > c.backoff.Cap || d <= 0 {
		d = c.backoff.Cap
	}
	c.rngMu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	if retryAfter > jittered {
		return retryAfter
	}
	return jittered
}

// parseRetryAfter reads a Retry-After header in whole seconds (the
// only form mcservd emits); absent or malformed values mean "no hint".
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// readError extracts the {"error": "..."} body mcservd uses, falling
// back to the raw text.
func readError(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return body.Error
	}
	return string(bytes.TrimSpace(raw))
}
