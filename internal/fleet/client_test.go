package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mcpaging/internal/core"
	"mcpaging/internal/server"
)

func jobReqFixture() server.JobRequest {
	return server.JobRequest{
		Trace:    server.TraceInput{Inline: []core.Sequence{{1, 2, 3, 1, 2, 3}}},
		Strategy: "S(LRU)",
		K:        4,
		Tau:      1,
	}
}

func TestClientRetriesBusyThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		w.Header().Set("Fleet-Worker-ID", "worker-a")
		json.NewEncoder(w).Encode(server.JobResponse{Key: "deadbeef"})
	}))
	defer ts.Close()

	clk := newFakeClock()
	c := NewClient(ts.URL, nil, clk, Backoff{Base: 10 * time.Millisecond, Attempts: 3}, 1)
	resp, remoteID, err := c.RunJob(context.Background(), jobReqFixture())
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if resp.Key != "deadbeef" || remoteID != "worker-a" {
		t.Fatalf("got key %q worker %q", resp.Key, remoteID)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("worker saw %d calls, want 3", got)
	}
	// Both backoffs must have been floored at the 2s Retry-After hint.
	for i, d := range clk.sleepLog() {
		if d < 2*time.Second {
			t.Fatalf("sleep %d was %v, below the Retry-After floor", i, d)
		}
	}
}

func TestClientBusyExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, newFakeClock(), Backoff{Base: time.Millisecond, Attempts: 2}, 1)
	_, _, err := c.RunJob(context.Background(), jobReqFixture())
	if !errors.Is(err, errWorkerBusy) {
		t.Fatalf("err = %v, want errWorkerBusy", err)
	}
	if got := calls.Load(); got != 3 { // initial + 2 retries
		t.Fatalf("worker saw %d calls, want 3", got)
	}
}

func TestClientPermanentErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown policy NOPE"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL, nil, newFakeClock(), Backoff{}, 1)
	_, _, err := c.RunJob(context.Background(), jobReqFixture())
	var perm errPermanent
	if !errors.As(err, &perm) {
		t.Fatalf("err = %v, want errPermanent", err)
	}
	if perm.StatusCode() != http.StatusUnprocessableEntity || perm.Error() != "unknown policy NOPE" {
		t.Fatalf("got status %d msg %q", perm.StatusCode(), perm.Error())
	}
	if calls.Load() != 1 {
		t.Fatalf("permanent errors must not retry; saw %d calls", calls.Load())
	}
}

func TestClientWorkerDown(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // dead peer: connection refused

	c := NewClient(url, nil, newFakeClock(), Backoff{}, 1)
	_, _, err := c.RunJob(context.Background(), jobReqFixture())
	if !errors.Is(err, errWorkerDown) {
		t.Fatalf("err = %v, want errWorkerDown", err)
	}
}

func TestReadyClassification(t *testing.T) {
	var status atomic.Int64
	status.Store(http.StatusOK)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
	}))
	defer ts.Close()
	c := NewClient(ts.URL, nil, newFakeClock(), Backoff{}, 1)

	if _, err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready on 200: %v", err)
	}
	status.Store(http.StatusServiceUnavailable)
	if _, err := c.Ready(context.Background()); !errors.Is(err, errWorkerBusy) {
		t.Fatalf("Ready on 503: %v, want errWorkerBusy", err)
	}
	status.Store(http.StatusInternalServerError)
	if _, err := c.Ready(context.Background()); !errors.Is(err, errWorkerDown) {
		t.Fatalf("Ready on 500: %v, want errWorkerDown", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {"0", 0}, {"-1", 0}, {"soon", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	c := NewClient("http://x", nil, newFakeClock(), Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Attempts: 5}, 42)
	for attempt := 0; attempt < 8; attempt++ {
		d := c.delay(attempt, 0)
		if d <= 0 || d > time.Second {
			t.Fatalf("attempt %d: delay %v outside (0, cap]", attempt, d)
		}
	}
	if d := c.delay(0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
}
