package fleet

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// WorkerStatus is a fleet member's routing state.
type WorkerStatus int32

const (
	// StatusHealthy workers take new work.
	StatusHealthy WorkerStatus = iota
	// StatusDraining workers answered 503 draining: alive, finishing
	// in-flight jobs, taking nothing new. They rejoin on a healthy
	// probe (e.g. a rolling restart coming back).
	StatusDraining
	// StatusDown workers failed a route or enough probes; they take no
	// work until a probe succeeds.
	StatusDown
)

func (s WorkerStatus) String() string {
	switch s {
	case StatusHealthy:
		return "healthy"
	case StatusDraining:
		return "draining"
	default:
		return "down"
	}
}

// RegistryConfig parameterises worker health tracking.
type RegistryConfig struct {
	// ProbeInterval is the /readyz probe period (0 = 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (0 = 1s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a
	// worker down (0 = 2). Routing transport failures mark it down
	// immediately — a dead TCP peer needs no second opinion.
	FailThreshold int
	// EWMAAlpha is the probe-latency smoothing factor in (0,1]
	// (0 = 0.3). The EWMA feeds the latency weight that scales how much
	// spilled (non-owner) work a worker may absorb.
	EWMAAlpha float64
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	return c
}

// workerState is the registry's live view of one fleet member.
type workerState struct {
	client *Client

	mu          sync.Mutex
	status      WorkerStatus
	consecFails int
	ewmaSeconds float64 // 0 until the first successful probe/route
	remoteID    string  // last Fleet-Worker-ID seen from this member
	probes      int64
	probeFails  int64
	inflight    int64
	served      int64
}

// tryAcquire claims an inflight slot if fewer than limit are taken.
func (w *workerState) tryAcquire(limit int64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inflight >= limit {
		return false
	}
	w.inflight++
	return true
}

func (w *workerState) release() {
	w.mu.Lock()
	w.inflight--
	w.mu.Unlock()
}

// observeLatency folds one latency sample into the EWMA.
func (w *workerState) observeLatency(alpha float64, d time.Duration) {
	s := d.Seconds()
	if w.ewmaSeconds == 0 {
		w.ewmaSeconds = s
		return
	}
	w.ewmaSeconds = alpha*s + (1-alpha)*w.ewmaSeconds
}

// WorkerInfo is a point-in-time snapshot of one member, exposed on
// GET /v1/workers and in /metrics.
type WorkerInfo struct {
	ID          string  `json:"id"`
	RemoteID    string  `json:"remote_id,omitempty"`
	Status      string  `json:"status"`
	LatencyMS   float64 `json:"latency_ms"`
	Weight      float64 `json:"weight"`
	Inflight    int64   `json:"inflight"`
	Served      int64   `json:"served"`
	Probes      int64   `json:"probes"`
	ProbeFails  int64   `json:"probe_fails"`
	ConsecFails int     `json:"consecutive_fails"`
}

// Registry tracks fleet membership and health. Members are fixed at
// construction (the ring is immutable); health is dynamic, fed by
// routing outcomes and the background /readyz probe loop.
type Registry struct {
	cfg     RegistryConfig
	clock   Clock
	ring    *Ring
	workers map[string]*workerState
	ids     []string // sorted

	stopOnce    sync.Once
	stop        chan struct{}
	done        chan struct{}
	probeCancel context.CancelFunc // set by Start; aborts in-flight probes on Close
}

// NewRegistry builds a registry over the given worker clients.
func NewRegistry(clients []*Client, replicas int, cfg RegistryConfig, clk Clock) (*Registry, error) {
	if len(clients) == 0 {
		return nil, errors.New("fleet: registry needs at least one worker")
	}
	if clk == nil {
		clk = SystemClock
	}
	g := &Registry{
		cfg:     cfg.withDefaults(),
		clock:   clk,
		workers: make(map[string]*workerState, len(clients)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, c := range clients {
		if _, dup := g.workers[c.ID()]; dup {
			return nil, errors.New("fleet: duplicate worker " + c.ID())
		}
		g.workers[c.ID()] = &workerState{client: c}
		g.ids = append(g.ids, c.ID())
	}
	sort.Strings(g.ids)
	g.ring = NewRing(replicas, g.ids)
	return g, nil
}

// Ring returns the registry's routing ring.
func (g *Registry) Ring() *Ring { return g.ring }

// Start launches the background probe loop under ctx; Close stops it.
// Probes run under a context derived from ctx, so both the caller's
// shutdown and Close abort a round that is mid-flight instead of
// letting it run out its ProbeTimeout detached from everything.
func (g *Registry) Start(ctx context.Context) {
	pctx, cancel := context.WithCancel(ctx)
	g.probeCancel = cancel
	go func() {
		defer close(g.done)
		defer cancel()
		for {
			select {
			case <-pctx.Done():
				return
			case <-g.stop:
				return
			case <-g.clock.After(g.cfg.ProbeInterval):
				g.ProbeAll(pctx)
			}
		}
	}()
}

// Close stops the probe loop — cancelling any probe round still in
// flight — and waits for it to exit.
func (g *Registry) Close() {
	g.stopOnce.Do(func() {
		if g.probeCancel != nil {
			g.probeCancel()
		}
		close(g.stop)
	})
	<-g.done
}

// ProbeAll probes every member once, concurrently, and applies the
// health transitions. Exported so tests (and the gateway at startup)
// can force a synchronous round.
func (g *Registry) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, id := range g.ids {
		w := g.workers[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
			defer cancel()
			rtt, err := w.client.Ready(pctx)
			w.mu.Lock()
			defer w.mu.Unlock()
			w.probes++
			switch {
			case err == nil:
				w.consecFails = 0
				w.status = StatusHealthy
				w.observeLatency(g.cfg.EWMAAlpha, rtt)
			case errors.Is(err, errWorkerBusy):
				// Alive but draining: latency sample is still real.
				w.consecFails = 0
				w.status = StatusDraining
				w.observeLatency(g.cfg.EWMAAlpha, rtt)
			default:
				w.probeFails++
				w.consecFails++
				if w.consecFails >= g.cfg.FailThreshold {
					w.status = StatusDown
				}
			}
		}()
	}
	wg.Wait()
}

// markRouteSuccess records a served job on id with its round-trip time
// and the worker's self-reported identity.
func (g *Registry) markRouteSuccess(id, remoteID string, rtt time.Duration) {
	w := g.workers[id]
	if w == nil {
		return
	}
	w.mu.Lock()
	w.consecFails = 0
	w.status = StatusHealthy
	w.served++
	if remoteID != "" {
		w.remoteID = remoteID
	}
	w.observeLatency(g.cfg.EWMAAlpha, rtt)
	w.mu.Unlock()
}

// markRouteDown records a hard routing failure: the worker is down
// until a probe brings it back.
func (g *Registry) markRouteDown(id string) {
	w := g.workers[id]
	if w == nil {
		return
	}
	w.mu.Lock()
	w.consecFails++
	w.status = StatusDown
	w.mu.Unlock()
}

// markRouteDraining records a 503-draining routing outcome.
func (g *Registry) markRouteDraining(id string) {
	w := g.workers[id]
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.status == StatusHealthy {
		w.status = StatusDraining
	}
	w.mu.Unlock()
}

// candidates returns the members to try for key, in failover order:
// the healthy ring successors first. If nothing is healthy it returns
// the full successor order — the caller's retry loop (with backoff)
// then doubles as the fleet's recovery wait.
func (g *Registry) candidates(key string) []*workerState {
	order := g.ring.Successors(key, len(g.ids))
	healthy := make([]*workerState, 0, len(order))
	for _, id := range order {
		w := g.workers[id]
		if w.currentStatus() == StatusHealthy {
			healthy = append(healthy, w)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	all := make([]*workerState, 0, len(order))
	for _, id := range order {
		all = append(all, g.workers[id])
	}
	return all
}

func (w *workerState) currentStatus() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.status
}

// Snapshot returns every member's state, sorted by ID, plus the
// fleet-wide minimum positive latency EWMA used as the weight anchor.
func (g *Registry) Snapshot() []WorkerInfo {
	out := make([]WorkerInfo, 0, len(g.ids))
	minEwma := 0.0
	for _, id := range g.ids {
		w := g.workers[id]
		w.mu.Lock()
		if w.ewmaSeconds > 0 && (minEwma == 0 || w.ewmaSeconds < minEwma) {
			minEwma = w.ewmaSeconds
		}
		w.mu.Unlock()
	}
	for _, id := range g.ids {
		w := g.workers[id]
		w.mu.Lock()
		out = append(out, WorkerInfo{
			ID:          id,
			RemoteID:    w.remoteID,
			Status:      w.status.String(),
			LatencyMS:   w.ewmaSeconds * 1000,
			Weight:      latencyWeight(w.ewmaSeconds, minEwma),
			Inflight:    w.inflight,
			Served:      w.served,
			Probes:      w.probes,
			ProbeFails:  w.probeFails,
			ConsecFails: w.consecFails,
		})
		w.mu.Unlock()
	}
	return out
}

// weight returns id's current latency weight in (0,1]: the ratio of
// the fastest member's EWMA to id's. Unprobed members weigh 1.
func (g *Registry) weight(id string) float64 {
	minEwma := 0.0
	for _, wid := range g.ids {
		w := g.workers[wid]
		w.mu.Lock()
		if w.ewmaSeconds > 0 && (minEwma == 0 || w.ewmaSeconds < minEwma) {
			minEwma = w.ewmaSeconds
		}
		w.mu.Unlock()
	}
	w := g.workers[id]
	if w == nil {
		return 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return latencyWeight(w.ewmaSeconds, minEwma)
}

// latencyWeight maps an EWMA onto (0,1] relative to the fleet's
// fastest member: 1 for the fastest (or unmeasured), shrinking as a
// member slows down relative to it.
func latencyWeight(ewma, minEwma float64) float64 {
	if ewma <= 0 || minEwma <= 0 {
		return 1
	}
	w := minEwma / ewma
	if w > 1 {
		return 1
	}
	return w
}
