package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcpaging/internal/core"
	"mcpaging/internal/server"
	"mcpaging/internal/sweep"
)

// newWorker starts a real in-process mcservd worker.
func newWorker(t *testing.T, id string) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{Workers: 2, WorkerID: id})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

type testFleet struct {
	gw  *Gateway
	reg *Registry
	met *fleetMetrics
	ts  *httptest.Server
	clk *fakeClock
}

// newTestFleet wires a coordinator over the given worker URLs. The
// registry's probe loop is not started; health is driven by routing
// outcomes and explicit ProbeAll calls.
func newTestFleet(t *testing.T, urls []string, dcfg DispatcherConfig, gcfg GatewayConfig) *testFleet {
	t.Helper()
	clk := newFakeClock()
	clients := make([]*Client, len(urls))
	for i, u := range urls {
		clients[i] = NewClient(u, nil, clk, Backoff{Base: time.Millisecond, Attempts: 1}, int64(i))
	}
	reg, err := NewRegistry(clients, 64, RegistryConfig{}, clk)
	if err != nil {
		t.Fatal(err)
	}
	met := &fleetMetrics{}
	disp := NewDispatcher(reg, dcfg, clk, met)
	gw := NewGateway(disp, gcfg, clk, met)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return &testFleet{gw: gw, reg: reg, met: met, ts: ts, clk: clk}
}

func fleetTrace() server.TraceInput {
	return server.TraceInput{Inline: []core.Sequence{
		{1, 2, 3, 1, 2, 3, 4, 1, 2},
		{10, 11, 10, 12, 11, 10},
	}}
}

func fleetSweepRequest() server.SweepRequest {
	return server.SweepRequest{
		Trace:      fleetTrace(),
		Ks:         []int{2, 4},
		Taus:       []int{0, 2},
		Strategies: []string{"S(LRU)", "S(FIFO)"},
		Seed:       7,
	}
}

func postJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetSweepMatchesSingleNode is the tentpole acceptance check: a
// fleet sweep over three workers streams byte-identical JSONL to the
// same sweep on one standalone mcservd.
func TestFleetSweepMatchesSingleNode(t *testing.T) {
	urls := []string{
		newWorker(t, "w1").URL,
		newWorker(t, "w2").URL,
		newWorker(t, "w3").URL,
	}
	f := newTestFleet(t, urls, DispatcherConfig{}, GatewayConfig{QuotaRate: -1})

	req := fleetSweepRequest()
	fleetResp := postJSON(t, f.ts.URL+"/v1/sweep", req)
	if fleetResp.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep status %d: %s", fleetResp.StatusCode, readBody(t, fleetResp))
	}
	fleetBody := readBody(t, fleetResp)

	// Fresh standalone node: both sides compute every cell (no cache
	// hits), so the streams must agree byte for byte.
	direct := newWorker(t, "solo")
	directResp := postJSON(t, direct.URL+"/v1/sweep", req)
	if directResp.StatusCode != http.StatusOK {
		t.Fatalf("direct sweep status %d", directResp.StatusCode)
	}
	directBody := readBody(t, directResp)

	if !bytes.Equal(fleetBody, directBody) {
		t.Fatalf("fleet sweep diverges from single node:\nfleet:\n%s\ndirect:\n%s", fleetBody, directBody)
	}
	if f.met.cells.Load() != 8 || f.met.cellErrors.Load() != 0 {
		t.Fatalf("cells=%d errors=%d, want 8/0", f.met.cells.Load(), f.met.cellErrors.Load())
	}
}

// TestFleetRejectsTraceCapacity pins the coordinator's network
// boundary: a tenant capacity spec naming a file on the coordinator
// or a worker (trace) is refused as a permanent 400 before any
// routing — only the portable schedule families travel the fleet.
func TestFleetRejectsTraceCapacity(t *testing.T) {
	f := newTestFleet(t, []string{newWorker(t, "w1").URL}, DispatcherConfig{}, GatewayConfig{QuotaRate: -1})
	job := server.JobRequest{
		Trace: fleetTrace(), Strategy: "S(LRU)", K: 8, Tau: 1,
		Capacity: "trace(path=/etc/hostname)", Seed: 1,
	}
	resp := postJSON(t, f.ts.URL+"/v1/jobs", job)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("job status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "portable") {
		t.Fatalf("job rejection %q does not name the portable families", body)
	}

	sreq := fleetSweepRequest()
	sreq.Capacities = []string{"trace(path=/etc/hostname)"}
	resp = postJSON(t, f.ts.URL+"/v1/sweep", sreq)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	if f.met.jobs.Load() != 0 || f.met.sweeps.Load() != 0 {
		t.Fatalf("rejected requests were routed: jobs=%d sweeps=%d", f.met.jobs.Load(), f.met.sweeps.Load())
	}
}

// TestFleetSweepCacheAffinity reruns a sweep and expects every cell to
// be a cache hit: consistent-hash routing sent each key back to the
// worker that computed it, so the per-worker caches act as one
// distributed cache.
func TestFleetSweepCacheAffinity(t *testing.T) {
	urls := []string{newWorker(t, "w1").URL, newWorker(t, "w2").URL, newWorker(t, "w3").URL}
	f := newTestFleet(t, urls, DispatcherConfig{}, GatewayConfig{QuotaRate: -1})

	req := fleetSweepRequest()
	first := readBody(t, postJSON(t, f.ts.URL+"/v1/sweep", req))
	second := readBody(t, postJSON(t, f.ts.URL+"/v1/sweep", req))

	var firstLines, secondLines []server.SweepLine
	for _, raw := range bytes.Split(bytes.TrimSpace(first), []byte("\n")) {
		var l server.SweepLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatal(err)
		}
		firstLines = append(firstLines, l)
	}
	for _, raw := range bytes.Split(bytes.TrimSpace(second), []byte("\n")) {
		var l server.SweepLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatal(err)
		}
		secondLines = append(secondLines, l)
	}
	if len(firstLines) != 8 || len(secondLines) != 8 {
		t.Fatalf("got %d + %d lines, want 8 + 8", len(firstLines), len(secondLines))
	}
	for i, l := range secondLines {
		if !l.Cached {
			t.Errorf("rerun cell %d (%s) missed the distributed cache", i, l.Key)
		}
		if l.Key != firstLines[i].Key {
			t.Errorf("cell %d key changed between runs", i)
		}
	}
}

// TestFleetFailoverOnDeadWorker routes a sweep through a fleet whose
// ring includes a dead member: every cell must still complete exactly
// once, in canonical order, via ring successors.
func TestFleetFailoverOnDeadWorker(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from the first dial

	urls := []string{newWorker(t, "w1").URL, newWorker(t, "w2").URL, deadURL}
	f := newTestFleet(t, urls, DispatcherConfig{}, GatewayConfig{QuotaRate: -1})

	req := fleetSweepRequest()
	resp := postJSON(t, f.ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	body := readBody(t, resp)

	rs, err := req.Trace.Resolve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Grid{R: rs, Ks: req.Ks, Taus: req.Taus, Specs: req.Strategies, Seed: req.Seed}
	cells := grid.Cells()

	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != len(cells) {
		t.Fatalf("got %d lines, want %d (no dropped or duplicated cells)", len(lines), len(cells))
	}
	seen := map[string]bool{}
	for i, raw := range lines {
		var l server.SweepLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatal(err)
		}
		c := cells[i]
		if l.K != c.K || l.Tau != c.Tau || l.Spec != c.Spec {
			t.Fatalf("line %d is (%d,%d,%s), want canonical (%d,%d,%s)", i, l.K, l.Tau, l.Spec, c.K, c.Tau, c.Spec)
		}
		if l.Error != "" || l.Result == nil {
			t.Fatalf("cell %d failed despite failover: %s", i, l.Error)
		}
		if seen[l.Key] {
			t.Fatalf("cell key %s served twice", l.Key)
		}
		seen[l.Key] = true
	}
	if f.met.failovers.Load() == 0 {
		t.Fatal("expected at least one recorded failover against the dead worker")
	}
}

// TestGatewayJobRouting posts a single job through the gateway and
// checks passthrough, worker attribution, and cache affinity.
func TestGatewayJobRouting(t *testing.T) {
	urls := []string{newWorker(t, "w1").URL, newWorker(t, "w2").URL}
	f := newTestFleet(t, urls, DispatcherConfig{}, GatewayConfig{QuotaRate: -1})

	job := server.JobRequest{Trace: fleetTrace(), Strategy: "S(LRU)", K: 4, Tau: 1}
	resp := postJSON(t, f.ts.URL+"/v1/jobs", job)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Fleet-Worker-ID") == "" {
		t.Fatal("gateway response missing Fleet-Worker-ID")
	}
	var out server.JobResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached || out.Key == "" {
		t.Fatalf("first run: cached=%v key=%q", out.Cached, out.Key)
	}

	resp2 := postJSON(t, f.ts.URL+"/v1/jobs", job)
	var out2 server.JobResponse
	if err := json.Unmarshal(readBody(t, resp2), &out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Cached || out2.Key != out.Key {
		t.Fatalf("rerun: cached=%v (want true), key %q vs %q", out2.Cached, out2.Key, out.Key)
	}
}

func TestGatewayPermanentErrorPassthrough(t *testing.T) {
	f := newTestFleet(t, []string{newWorker(t, "w1").URL}, DispatcherConfig{}, GatewayConfig{QuotaRate: -1})
	job := server.JobRequest{Trace: fleetTrace(), Strategy: "S(NOPE)", K: 4}
	resp := postJSON(t, f.ts.URL+"/v1/jobs", job)
	if body := readBody(t, resp); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422 passed through from the worker", resp.StatusCode, body)
	}
}

func TestGatewayQuota(t *testing.T) {
	f := newTestFleet(t, []string{newWorker(t, "w1").URL}, DispatcherConfig{},
		GatewayConfig{QuotaRate: 1, QuotaBurst: 2})
	job := server.JobRequest{Trace: fleetTrace(), Strategy: "S(LRU)", K: 4, Tau: 1}

	for i := 0; i < 2; i++ {
		resp := postJSON(t, f.ts.URL+"/v1/jobs", job)
		if body := readBody(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst job %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp := postJSON(t, f.ts.URL+"/v1/jobs", job)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota refusal missing Retry-After")
	}
	if !strings.Contains(string(body), "over quota") {
		t.Fatalf("unexpected refusal body: %s", body)
	}
	if f.met.quotaDenied.Load() != 1 {
		t.Fatalf("quotaDenied = %d, want 1", f.met.quotaDenied.Load())
	}

	// The bucket refills at QuotaRate once the clock moves.
	f.clk.advance(2 * time.Second)
	resp = postJSON(t, f.ts.URL+"/v1/jobs", job)
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill status %d (%s)", resp.StatusCode, body)
	}

	// A second tenant has its own bucket.
	reqBody, _ := json.Marshal(job)
	hreq, _ := http.NewRequest(http.MethodPost, f.ts.URL+"/v1/jobs", bytes.NewReader(reqBody))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(tenantHeader, "team-b")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, hresp); hresp.StatusCode != http.StatusOK {
		t.Fatalf("fresh tenant status %d (%s)", hresp.StatusCode, body)
	}
}

func TestGatewaySheddingUnderSaturation(t *testing.T) {
	f := newTestFleet(t, []string{newWorker(t, "w1").URL}, DispatcherConfig{},
		GatewayConfig{QuotaRate: -1, ShedInflight: 2})
	f.met.cellsInflight.Add(2) // simulate a saturated fleet
	defer f.met.cellsInflight.Add(-2)

	job := server.JobRequest{Trace: fleetTrace(), Strategy: "S(LRU)", K: 4}
	resp := postJSON(t, f.ts.URL+"/v1/jobs", job)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), "saturated") {
		t.Fatalf("status %d (%s), want shed 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if f.met.shed.Load() != 1 {
		t.Fatalf("shed = %d, want 1", f.met.shed.Load())
	}
}

func TestGatewayDrain(t *testing.T) {
	f := newTestFleet(t, []string{newWorker(t, "w1").URL}, DispatcherConfig{}, GatewayConfig{QuotaRate: -1})
	f.gw.Drain()

	resp, err := http.Get(f.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining /readyz: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	job := server.JobRequest{Trace: fleetTrace(), Strategy: "S(LRU)", K: 4}
	jresp := postJSON(t, f.ts.URL+"/v1/jobs", job)
	readBody(t, jresp)
	if jresp.StatusCode != http.StatusServiceUnavailable || jresp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining job: status %d, Retry-After %q", jresp.StatusCode, jresp.Header.Get("Retry-After"))
	}
}

func TestGatewayObservabilityEndpoints(t *testing.T) {
	f := newTestFleet(t, []string{newWorker(t, "w1").URL, newWorker(t, "w2").URL},
		DispatcherConfig{}, GatewayConfig{QuotaRate: -1})
	readBody(t, postJSON(t, f.ts.URL+"/v1/jobs",
		server.JobRequest{Trace: fleetTrace(), Strategy: "S(LRU)", K: 4}))

	resp, err := http.Get(f.ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var workers struct {
		Ring    []string     `json:"ring"`
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal(readBody(t, resp), &workers); err != nil {
		t.Fatal(err)
	}
	if len(workers.Ring) != 2 || len(workers.Workers) != 2 {
		t.Fatalf("workers endpoint: %d ring members, %d workers", len(workers.Ring), len(workers.Workers))
	}

	mresp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	for _, want := range []string{"mcfleet_jobs_total 1", "mcfleet_worker_up{worker=", "mcfleet_ready 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	sresp, err := http.Get(f.ts.URL + "/strategies")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, sresp); sresp.StatusCode != http.StatusOK || !strings.Contains(string(body), "strategies") {
		t.Fatalf("strategies proxy: status %d body %s", sresp.StatusCode, body)
	}
}
