// Package fleet implements mcfleet, the sweep-orchestration layer over
// a fleet of mcservd workers. It is the serving-side reading of the
// multicore model: many independent caches (the workers' result
// caches) in front of one shared workload (the sweep grid), with the
// coordinator deciding placement.
//
// Pieces, front to back:
//
//   - Gateway (gateway.go): admission control — per-tenant token-bucket
//     quotas and load shedding — plus the coordinator's HTTP surface
//     and graceful drain.
//   - Dispatcher (dispatcher.go): fans sweep cells out across workers
//     with blocking-enqueue backpressure, retries and failover, and
//     re-merges streamed results into canonical grid order.
//   - Registry (registry.go): worker membership, /readyz health probes,
//     latency EWMAs and the weights derived from them.
//   - Client (client.go): per-worker HTTP client honoring 429/503
//     Retry-After with jittered exponential backoff.
//   - Ring (this file): consistent-hash routing keyed on the
//     content-addressed job hash, so the per-worker result caches
//     compose into one logical distributed cache with high affinity.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// ringSeed domain-separates ring point hashing from every other SHA-256
// use in the repo.
const ringSeed = "mcfleet/ring/v1\x00"

// Ring is an immutable consistent-hash ring over a set of member IDs.
// Each member owns Replicas virtual points; a key is owned by the
// member of the first point clockwise from the key's position.
// Membership changes are modelled by building a new Ring — the
// consistent-hashing contract (only keys touching the added/removed
// member move) is pinned by FuzzRingRebalance.
type Ring struct {
	replicas int
	members  []string
	points   []ringPoint
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring with the given virtual-point count per member
// (replicas < 1 is clamped to 1). Member IDs are deduplicated and
// sorted, so rings built from the same set are identical regardless of
// input order.
func NewRing(replicas int, members []string) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, members: uniq}
	r.points = make([]ringPoint, 0, replicas*len(uniq))
	var buf [binary.MaxVarintLen64]byte
	for mi, m := range uniq {
		h := sha256.New()
		h.Write([]byte(ringSeed))
		h.Write([]byte(m))
		h.Write([]byte{0})
		base := h.Sum(nil)
		for rep := 0; rep < replicas; rep++ {
			h2 := sha256.New()
			h2.Write(base)
			h2.Write(buf[:binary.PutUvarint(buf[:], uint64(rep))])
			sum := h2.Sum(nil)
			r.points = append(r.points, ringPoint{
				hash:   binary.BigEndian.Uint64(sum[:8]),
				member: mi,
			})
		}
	}
	// Ties (astronomically unlikely) break by member index, keeping the
	// ring deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member IDs.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// KeyPoint maps a routing key onto the ring's hash space. Job keys are
// the hex SHA-256 the server computes (server.JobKey); their first 16
// hex digits already are a uniform 64-bit value, so they are used
// directly. Any other string is hashed first.
func KeyPoint(key string) uint64 {
	if len(key) >= 16 {
		if v, err := hex.DecodeString(key[:16]); err == nil {
			return binary.BigEndian.Uint64(v)
		}
	}
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Lookup returns the member owning key, or "" for an empty ring.
func (r *Ring) Lookup(key string) string {
	succ := r.Successors(key, 1)
	if len(succ) == 0 {
		return ""
	}
	return succ[0]
}

// Successors returns up to n distinct members in ring order starting
// at key's owner — the failover order: if the owner is down, the next
// ring member inherits exactly this key range, so retried cells stay
// as cache-affine as membership allows.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	kp := KeyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kp })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if !taken[pt.member] {
			taken[pt.member] = true
			out = append(out, r.members[pt.member])
		}
	}
	return out
}
