package fleet

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock for tests. After fires
// immediately, advancing the fake time by the requested duration and
// recording it, so backoff schedules can be asserted without sleeping.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	now := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) sleepLog() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.sleeps))
	copy(out, c.sleeps)
	return out
}

func TestSleepHonorsContext(t *testing.T) {
	clk := newFakeClock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleep(ctx, clk, 0); err == nil {
		t.Fatal("sleep(canceled, 0) must return the context error")
	}
	if err := sleep(context.Background(), clk, time.Second); err != nil {
		t.Fatalf("sleep: %v", err)
	}
	if got := clk.sleepLog(); len(got) != 1 || got[0] != time.Second {
		t.Fatalf("sleep log = %v, want [1s]", got)
	}
}
