package fleet

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
)

// fleetMetrics holds the coordinator counters exposed on /metrics.
// All fields are atomics, bumped from the gateway and dispatcher.
type fleetMetrics struct {
	jobs       atomic.Int64 // single jobs routed via POST /v1/jobs
	sweeps     atomic.Int64 // sweeps accepted
	cells      atomic.Int64 // sweep cells completed successfully
	cellErrors atomic.Int64 // cells that exhausted retry/failover

	routedOwner atomic.Int64 // cells served by their ring owner
	routedSpill atomic.Int64 // cells spilled to a ring successor
	failovers   atomic.Int64 // hard worker failures observed while routing
	retryRounds atomic.Int64 // full failover rotations that ended in backoff

	quotaDenied atomic.Int64 // requests bounced by a tenant quota
	shed        atomic.Int64 // requests shed because the fleet was saturated

	cellsInflight atomic.Int64 // gauge: cells currently in flight
}

// writePrometheus emits the coordinator metrics in Prometheus text
// format (version 0.0.4): the mcfleet_* counter family, then the
// per-worker gauge families labelled by worker ID in sorted order, so
// scrapes are stable.
func (m *fleetMetrics) writePrometheus(w io.Writer, workers []WorkerInfo, tenants int, ready bool) error {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("mcfleet_jobs_total", "Single jobs routed onto the fleet.", m.jobs.Load())
	counter("mcfleet_sweeps_total", "Sweeps accepted by the coordinator.", m.sweeps.Load())
	counter("mcfleet_cells_total", "Sweep cells completed successfully.", m.cells.Load())
	counter("mcfleet_cell_errors_total", "Sweep cells that failed after retry and failover.", m.cellErrors.Load())
	counter("mcfleet_routed_owner_total", "Cells served by their consistent-hash ring owner.", m.routedOwner.Load())
	counter("mcfleet_routed_spill_total", "Cells spilled to a ring successor (owner saturated or down).", m.routedSpill.Load())
	counter("mcfleet_failovers_total", "Hard worker failures observed while routing.", m.failovers.Load())
	counter("mcfleet_retry_rounds_total", "Failover rotations that exhausted all candidates and backed off.", m.retryRounds.Load())
	counter("mcfleet_quota_denied_total", "Requests bounced by a per-tenant quota.", m.quotaDenied.Load())
	counter("mcfleet_shed_total", "Requests shed because the fleet was saturated.", m.shed.Load())
	gauge("mcfleet_cells_inflight", "Sweep cells currently in flight.", float64(m.cellsInflight.Load()))
	gauge("mcfleet_tenants", "Tenants with an active quota bucket.", float64(tenants))
	readyVal := 0.0
	if ready {
		readyVal = 1
	}
	gauge("mcfleet_ready", "1 while the coordinator admits work, 0 once draining.", readyVal)

	labelled := func(name, help, typ string, value func(WorkerInfo) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, wi := range workers {
			fmt.Fprintf(&b, "%s{worker=%q} %g\n", name, wi.ID, value(wi))
		}
	}
	labelled("mcfleet_worker_up", "1 while the worker is healthy, 0 while draining or down.", "gauge", func(wi WorkerInfo) float64 {
		if wi.Status == StatusHealthy.String() {
			return 1
		}
		return 0
	})
	labelled("mcfleet_worker_latency_seconds", "EWMA of the worker's observed latency.", "gauge", func(wi WorkerInfo) float64 {
		return wi.LatencyMS / 1000
	})
	labelled("mcfleet_worker_weight", "Latency weight scaling the spill work this worker absorbs.", "gauge", func(wi WorkerInfo) float64 {
		return wi.Weight
	})
	labelled("mcfleet_worker_inflight", "Cells currently in flight on this worker.", "gauge", func(wi WorkerInfo) float64 {
		return float64(wi.Inflight)
	})
	labelled("mcfleet_worker_served_total", "Jobs this worker has served for the coordinator.", "counter", func(wi WorkerInfo) float64 {
		return float64(wi.Served)
	})
	labelled("mcfleet_worker_probe_fails_total", "Failed /readyz probes against this worker.", "counter", func(wi WorkerInfo) float64 {
		return float64(wi.ProbeFails)
	})
	_, err := io.WriteString(w, b.String())
	return err
}
