package fleet

import (
	"context"
	"time"
)

// Clock is the package's only source of time. Everything in the fleet
// that samples the clock — probe latency, token-bucket refill, backoff
// sleeps — goes through this interface, so tests substitute a fake and
// the wallclock analyzer has exactly two allowlisted call sites
// (sysClock's methods) to audit.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives after d elapses.
	After(d time.Duration) <-chan time.Time
}

// sysClock is the real wall clock. Its two methods are the package's
// only direct time-package reads; they are allowlisted for the
// wallclock analyzer because fleet timing is operational (backoff,
// probes, quotas) and never reaches a simulation result or cache key.
type sysClock struct{}

func (sysClock) Now() time.Time                         { return time.Now() }
func (sysClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock is the production Clock.
var SystemClock Clock = sysClock{}

// sleep waits for d on clk, returning early with ctx's error if the
// context ends first.
func sleep(ctx context.Context, clk Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-clk.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
