package fleet

import (
	"context"
	"time"
)

// Clock is the package's only source of time. Everything in the fleet
// that samples the clock — probe latency, token-bucket refill, backoff
// sleeps — goes through this interface, so tests substitute a fake and
// the wallclock/clockflow analyzers have exactly one structural
// exemption to audit: methods of a type implementing this interface.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives after d elapses.
	After(d time.Duration) <-chan time.Time
}

// sysClock is the real wall clock. Its two methods are the package's
// only direct time-package reads; the wallclock analyzer exempts them
// structurally because sysClock implements Clock, the injection
// boundary — fleet timing is operational (backoff, probes, quotas)
// and never reaches a simulation result or cache key, and clockflow
// proves interprocedurally that nothing bypasses the interface.
type sysClock struct{}

func (sysClock) Now() time.Time                         { return time.Now() }
func (sysClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock is the production Clock.
var SystemClock Clock = sysClock{}

// sleep waits for d on clk, returning early with ctx's error if the
// context ends first.
func sleep(ctx context.Context, clk Clock, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-clk.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
