package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func TestRingOrderInsensitive(t *testing.T) {
	a := NewRing(64, []string{"w1", "w2", "w3"})
	b := NewRing(64, []string{"w3", "w1", "w2", "w1"}) // shuffled + dup
	for _, k := range sampleKeys(256) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %s: owner differs between equal rings: %s vs %s", k, a.Lookup(k), b.Lookup(k))
		}
	}
}

func TestRingSuccessorsDistinctAndComplete(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4"}
	r := NewRing(32, members)
	for _, k := range sampleKeys(64) {
		succ := r.Successors(k, 100) // over-ask: clamped to member count
		if len(succ) != len(members) {
			t.Fatalf("key %s: got %d successors, want %d", k, len(succ), len(members))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("key %s: duplicate successor %s", k, m)
			}
			seen[m] = true
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("key %s: Successors[0]=%s but Lookup=%s", k, succ[0], r.Lookup(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"w1", "w2", "w3"}
	r := NewRing(128, members)
	counts := map[string]int{}
	keys := sampleKeys(3000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.0f%% of keys — ring badly unbalanced: %v", m, share*100, counts)
		}
	}
}

func TestKeyPointHexFastPath(t *testing.T) {
	// A job key's first 16 hex digits are its ring position directly.
	if got := KeyPoint("ffff0000000000001234"); got != 0xffff000000000000 {
		t.Fatalf("KeyPoint hex fast path: got %#x", got)
	}
	if got := KeyPoint("0000000000000001"); got != 1 {
		t.Fatalf("KeyPoint hex fast path: got %#x", got)
	}
	// Non-hex keys hash; same key, same point.
	if KeyPoint("not a hex key!!!") != KeyPoint("not a hex key!!!") {
		t.Fatal("KeyPoint not deterministic for non-hex keys")
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(8, nil)
	if got := empty.Lookup("abc"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	single := NewRing(8, []string{"only"})
	for _, k := range sampleKeys(16) {
		if single.Lookup(k) != "only" {
			t.Fatal("single-member ring must own every key")
		}
	}
}

// checkRebalance asserts the consistent-hashing contract between a ring
// and the same ring without one member: keys not owned by the removed
// member keep their owner, and keys it did own move to exactly its
// successor (the next distinct member clockwise).
func checkRebalance(t *testing.T, replicas int, members []string, removed string, keys []string) {
	t.Helper()
	var rest []string
	for _, m := range members {
		if m != removed {
			rest = append(rest, m)
		}
	}
	full := NewRing(replicas, members)
	less := NewRing(replicas, rest)
	for _, k := range keys {
		owner := full.Lookup(k)
		after := less.Lookup(k)
		if owner != removed {
			if after != owner {
				t.Fatalf("key %.16s moved %s → %s though %s was removed", k, owner, after, removed)
			}
			continue
		}
		succ := full.Successors(k, 2)
		if len(succ) < 2 {
			continue // two-member ring: everything lands on the survivor
		}
		if after != succ[1] {
			t.Fatalf("key %.16s owned by removed %s went to %s, want successor %s", k, removed, after, succ[1])
		}
	}
}

func TestRingRebalanceOnRemoval(t *testing.T) {
	members := []string{"w1", "w2", "w3", "w4", "w5"}
	keys := sampleKeys(500)
	for _, removed := range members {
		checkRebalance(t, 64, members, removed, keys)
	}
}

// FuzzRingRebalance fuzzes the rebalance invariant over membership
// size, replica count, removed index, and key material.
func FuzzRingRebalance(f *testing.F) {
	f.Add(uint8(3), uint8(16), uint8(1), []byte("seed"))
	f.Add(uint8(7), uint8(1), uint8(0), []byte{0xff, 0x00})
	f.Add(uint8(2), uint8(64), uint8(5), []byte("abcdef0123456789"))
	f.Fuzz(func(t *testing.T, nMembers, replicas, removeIdx uint8, keyData []byte) {
		n := 2 + int(nMembers)%7
		reps := 1 + int(replicas)%64
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("w%02d", i)
		}
		removed := members[int(removeIdx)%n]
		sum := sha256.Sum256(keyData)
		keys := []string{
			hex.EncodeToString(sum[:]), // job-key shape: hex fast path
			string(keyData),            // arbitrary bytes: hash fallback
		}
		checkRebalance(t, reps, members, removed, keys)
	})
}
