package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mcpaging/internal/server"
)

// tenantHeader names the request header carrying the tenant identity
// for quota accounting. Requests without it share the "default" tenant.
const tenantHeader = "X-Tenant"

// GatewayConfig parameterises admission control.
type GatewayConfig struct {
	// QuotaRate is each tenant's sustained budget in cells per second
	// (0 = 64; negative = quotas disabled). A single job costs one
	// cell; a sweep costs its grid size.
	QuotaRate float64
	// QuotaBurst is each tenant's token-bucket depth in cells (0 = 4×
	// QuotaRate). Bursts up to this size are admitted at full speed.
	QuotaBurst float64
	// ShedInflight sheds new work with 429 once this many cells are in
	// flight fleet-wide (0 = 4× the dispatcher's MaxInflight). This is
	// the overload valve: quotas bound each tenant, shedding bounds
	// their sum.
	ShedInflight int
	// RetryAfter is the Retry-After hint on 429 and 503 responses
	// (0 = 1s).
	RetryAfter time.Duration
	// MaxBody bounds request bodies in bytes (0 = 64 MiB).
	MaxBody int64
}

func (c GatewayConfig) withDefaults(dispatchInflight int) GatewayConfig {
	if c.QuotaRate == 0 {
		c.QuotaRate = 64
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 4 * c.QuotaRate
	}
	if c.ShedInflight <= 0 {
		c.ShedInflight = 4 * dispatchInflight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 << 20
	}
	return c
}

// tokenBucket is one tenant's quota state: a continuously refilling
// budget sampled lazily on each admission check.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// Gateway is the coordinator's HTTP surface: per-tenant token-bucket
// quotas, fleet-saturation load shedding, the job/sweep endpoints
// backed by the dispatcher, and observability (/metrics, /v1/workers).
// Its graceful drain mirrors mcservd: readiness flips false, new work
// is refused with 503 + Retry-After, and Drain waits for in-flight
// requests to finish.
type Gateway struct {
	cfg   GatewayConfig
	disp  *Dispatcher
	reg   *Registry
	clock Clock
	met   *fleetMetrics
	mux   *http.ServeMux

	quotaMu sync.Mutex
	buckets map[string]*tokenBucket

	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup
}

// NewGateway builds the coordinator surface over a dispatcher. The
// metrics instance must be the one the dispatcher reports into.
func NewGateway(disp *Dispatcher, cfg GatewayConfig, clk Clock, met *fleetMetrics) *Gateway {
	if clk == nil {
		clk = SystemClock
	}
	if met == nil {
		met = disp.met
	}
	g := &Gateway{
		cfg:     cfg.withDefaults(disp.cfg.MaxInflight),
		disp:    disp,
		reg:     disp.reg,
		clock:   clk,
		met:     met,
		mux:     http.NewServeMux(),
		buckets: make(map[string]*tokenBucket),
	}
	g.routes()
	return g
}

func (g *Gateway) routes() {
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /v1/workers", g.handleWorkers)
	g.mux.HandleFunc("GET /strategies", g.handleStrategies)
	g.mux.HandleFunc("POST /v1/jobs", g.handleJob)
	g.mux.HandleFunc("POST /v1/sweep", g.handleSweep)
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Drain stops admission and waits for in-flight requests to finish.
// Idempotent; mirrors mcservd's drain so a fleet rolls the same way a
// single worker does.
func (g *Gateway) Drain() {
	g.drainMu.Lock()
	g.draining = true
	g.drainMu.Unlock()
	g.inflight.Wait()
}

func (g *Gateway) ready() bool {
	g.drainMu.RLock()
	defer g.drainMu.RUnlock()
	return !g.draining
}

// admit charges cost cells against tenant's token bucket, reporting
// whether the request is within quota. Buckets refill continuously at
// QuotaRate up to QuotaBurst; a new tenant starts with a full bucket.
func (g *Gateway) admit(tenant string, cost float64) bool {
	if g.cfg.QuotaRate < 0 {
		return true
	}
	now := g.clock.Now()
	g.quotaMu.Lock()
	defer g.quotaMu.Unlock()
	b := g.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: g.cfg.QuotaBurst, last: now}
		g.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * g.cfg.QuotaRate
	if b.tokens > g.cfg.QuotaBurst {
		b.tokens = g.cfg.QuotaBurst
	}
	b.last = now
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

func (g *Gateway) tenantCount() int {
	g.quotaMu.Lock()
	defer g.quotaMu.Unlock()
	return len(g.buckets)
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(tenantHeader); t != "" {
		return t
	}
	return "default"
}

func (g *Gateway) retryAfterHint() string {
	return strconv.Itoa(int((g.cfg.RetryAfter + time.Second - 1) / time.Second))
}

// gate runs the admission pipeline shared by the job and sweep
// endpoints: drain check, saturation shedding, then the tenant quota.
// It reports whether the request may proceed, writing the refusal
// itself when not.
func (g *Gateway) gate(w http.ResponseWriter, r *http.Request, cost float64) bool {
	if !g.ready() {
		w.Header().Set("Retry-After", g.retryAfterHint())
		httpError(w, http.StatusServiceUnavailable, "coordinator draining")
		return false
	}
	if g.met.cellsInflight.Load() >= int64(g.cfg.ShedInflight) {
		g.met.shed.Add(1)
		w.Header().Set("Retry-After", g.retryAfterHint())
		httpError(w, http.StatusTooManyRequests, "fleet saturated: %d cells in flight", g.met.cellsInflight.Load())
		return false
	}
	if !g.admit(tenantOf(r), cost) {
		g.met.quotaDenied.Add(1)
		w.Header().Set("Retry-After", g.retryAfterHint())
		httpError(w, http.StatusTooManyRequests, "tenant %q over quota (%g cells): retry later", tenantOf(r), cost)
		return false
	}
	return true
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !g.ready() {
		w.Header().Set("Retry-After", g.retryAfterHint())
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.met.writePrometheus(w, g.reg.Snapshot(), g.tenantCount(), g.ready())
}

func (g *Gateway) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Ring    []string     `json:"ring"`
		Workers []WorkerInfo `json:"workers"`
	}{g.reg.Ring().Members(), g.reg.Snapshot()})
}

// handleStrategies proxies the strategy catalogue from the first
// healthy worker (all workers run the same binary, so any answer is
// authoritative).
func (g *Gateway) handleStrategies(w http.ResponseWriter, r *http.Request) {
	var lastErr error
	for _, id := range g.reg.ids {
		ws := g.reg.workers[id]
		if ws.currentStatus() == StatusDown {
			continue
		}
		body, err := ws.client.Get(r.Context(), "/strategies")
		if err != nil {
			lastErr = err
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		return
	}
	httpError(w, http.StatusBadGateway, "no worker answered /strategies: %v", lastErr)
}

// handleJob admits one job (cost: one cell) and routes it through the
// dispatcher, passing the worker's response through unchanged and
// naming the serving worker in Fleet-Worker-ID.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBody)
	var req server.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job: %v", err)
		return
	}
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, "strategy is required")
		return
	}
	if !g.gate(w, r, 1) {
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Done()
	g.met.cellsInflight.Add(1)
	defer g.met.cellsInflight.Add(-1)
	resp, workerID, err := g.disp.RunJob(r.Context(), req)
	if err != nil {
		writeRouteError(w, err, g.retryAfterHint())
		return
	}
	w.Header().Set("Fleet-Worker-ID", workerID)
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep admits a sweep (cost: its cell count) and streams the
// dispatcher's canonically ordered JSONL merge.
func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBody)
	var req server.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding sweep: %v", err)
		return
	}
	rs, grid, err := g.disp.ResolveGrid(req)
	if err != nil {
		writeRouteError(w, err, g.retryAfterHint())
		return
	}
	if !g.gate(w, r, float64(len(grid.Cells()))) {
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Done()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Per-cell failures are reported in-line on each cell's JSONL row;
	// an error here means the stream itself died (client gone).
	_ = g.disp.sweepResolved(r.Context(), rs, grid, req, w)
}

// writeRouteError maps a dispatcher error onto the gateway's response:
// tenant errors pass the worker's status through, fleet saturation and
// drain surface as 503 with a Retry-After hint, anything else is 502.
func writeRouteError(w http.ResponseWriter, err error, retryAfter string) {
	var perm errPermanent
	switch {
	case errors.As(err, &perm):
		httpError(w, perm.StatusCode(), "%v", perm)
	case errors.Is(err, errWorkerBusy):
		w.Header().Set("Retry-After", retryAfter)
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusBadGateway, "%v", err)
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body {"error": "..."}, the same shape
// mcservd uses so fleet and single-node clients share error handling.
func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
