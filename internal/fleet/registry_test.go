package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// probeWorker is a stub worker whose /readyz status is switchable.
type probeWorker struct {
	ts     *httptest.Server
	status atomic.Int64
}

func newProbeWorker(t *testing.T) *probeWorker {
	t.Helper()
	p := &probeWorker{}
	p.status.Store(http.StatusOK)
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(p.status.Load()))
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func newTestRegistry(t *testing.T, workers []*probeWorker) *Registry {
	t.Helper()
	clients := make([]*Client, len(workers))
	for i, p := range workers {
		clients[i] = NewClient(p.ts.URL, nil, newFakeClock(), Backoff{}, int64(i))
	}
	reg, err := NewRegistry(clients, 32, RegistryConfig{FailThreshold: 2}, newFakeClock())
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func statusOf(t *testing.T, reg *Registry, id string) string {
	t.Helper()
	for _, wi := range reg.Snapshot() {
		if wi.ID == id {
			return wi.Status
		}
	}
	t.Fatalf("worker %s not in snapshot", id)
	return ""
}

func TestProbeTransitions(t *testing.T) {
	p := newProbeWorker(t)
	reg := newTestRegistry(t, []*probeWorker{p})
	id := p.ts.URL

	reg.ProbeAll(context.Background())
	if got := statusOf(t, reg, id); got != "healthy" {
		t.Fatalf("after OK probe: %s", got)
	}

	// One failure is below FailThreshold=2: still healthy.
	p.status.Store(http.StatusInternalServerError)
	reg.ProbeAll(context.Background())
	if got := statusOf(t, reg, id); got != "healthy" {
		t.Fatalf("after 1 failed probe: %s, want healthy", got)
	}
	reg.ProbeAll(context.Background())
	if got := statusOf(t, reg, id); got != "down" {
		t.Fatalf("after 2 failed probes: %s, want down", got)
	}

	// 503 is draining, and resets the hard-failure streak.
	p.status.Store(http.StatusServiceUnavailable)
	reg.ProbeAll(context.Background())
	if got := statusOf(t, reg, id); got != "draining" {
		t.Fatalf("after 503 probe: %s, want draining", got)
	}

	p.status.Store(http.StatusOK)
	reg.ProbeAll(context.Background())
	if got := statusOf(t, reg, id); got != "healthy" {
		t.Fatalf("after recovery probe: %s, want healthy", got)
	}
}

// TestCloseCancelsInflightProbe pins the probe-loop cancellation fix.
// Before Start took a context, a probe round already in flight when
// Close ran had nothing to abort it: the loop could not exit until the
// round's ProbeTimeout expired, so Close (and therefore process drain)
// stalled behind a dead worker's full timeout. With ProbeTimeout set to
// an hour, the pre-fix Close blocks for that hour; the fix must cancel
// the round and return promptly.
func TestCloseCancelsInflightProbe(t *testing.T) {
	probing := make(chan struct{}, 16)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probing <- struct{}{}
		<-r.Context().Done() // hang until the probe's context is cancelled
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL, nil, newFakeClock(), Backoff{}, 0)
	reg, err := NewRegistry([]*Client{c}, 8, RegistryConfig{
		ProbeInterval: time.Second,
		ProbeTimeout:  time.Hour, // Close must not need to wait this out
	}, newFakeClock())
	if err != nil {
		t.Fatal(err)
	}

	// fakeClock.After fires immediately, so the loop enters a probe
	// round as soon as it starts; wait until the round is mid-flight.
	reg.Start(context.Background())
	<-probing

	closed := make(chan struct{})
	go func() {
		reg.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel the in-flight probe round")
	}
}

func TestRouteMarksOverrideProbes(t *testing.T) {
	p := newProbeWorker(t)
	reg := newTestRegistry(t, []*probeWorker{p})
	id := p.ts.URL

	// A hard routing failure downs the worker immediately, no threshold.
	reg.markRouteDown(id)
	if got := statusOf(t, reg, id); got != "down" {
		t.Fatalf("after markRouteDown: %s", got)
	}
	reg.markRouteSuccess(id, "remote-1", 5*time.Millisecond)
	if got := statusOf(t, reg, id); got != "healthy" {
		t.Fatalf("after markRouteSuccess: %s", got)
	}
	reg.markRouteDraining(id)
	if got := statusOf(t, reg, id); got != "draining" {
		t.Fatalf("after markRouteDraining: %s", got)
	}
}

func TestCandidatesSkipUnhealthy(t *testing.T) {
	ps := []*probeWorker{newProbeWorker(t), newProbeWorker(t), newProbeWorker(t)}
	reg := newTestRegistry(t, ps)
	key := sampleKeys(1)[0]

	full := reg.candidates(key)
	if len(full) != 3 {
		t.Fatalf("all healthy: %d candidates, want 3", len(full))
	}
	owner := full[0].client.ID()

	reg.markRouteDown(owner)
	after := reg.candidates(key)
	if len(after) != 2 {
		t.Fatalf("one down: %d candidates, want 2", len(after))
	}
	for _, w := range after {
		if w.client.ID() == owner {
			t.Fatal("down owner still among candidates")
		}
	}
	// Failover preserves ring order: the new head must be the old second.
	if after[0].client.ID() != full[1].client.ID() {
		t.Fatalf("failover head = %s, want ring successor %s", after[0].client.ID(), full[1].client.ID())
	}

	// Nothing healthy: fall back to the full ring order so the retry
	// loop can wait for recovery instead of failing instantly.
	for _, p := range ps {
		reg.markRouteDown(p.ts.URL)
	}
	if got := reg.candidates(key); len(got) != 3 {
		t.Fatalf("all down: %d candidates, want full ring", len(got))
	}
}

func TestLatencyWeight(t *testing.T) {
	cases := []struct {
		ewma, min, want float64
	}{
		{0, 0, 1},     // unmeasured
		{0.010, 0, 1}, // no fleet minimum yet
		{0.010, 0.010, 1},
		{0.020, 0.010, 0.5},
		{0.005, 0.010, 1}, // faster than the recorded min: clamp
	}
	for _, c := range cases {
		if got := latencyWeight(c.ewma, c.min); got != c.want {
			t.Errorf("latencyWeight(%v, %v) = %v, want %v", c.ewma, c.min, got, c.want)
		}
	}
}

func TestWeightTracksEWMA(t *testing.T) {
	ps := []*probeWorker{newProbeWorker(t), newProbeWorker(t)}
	reg := newTestRegistry(t, ps)
	fast, slow := ps[0].ts.URL, ps[1].ts.URL
	reg.markRouteSuccess(fast, "", 10*time.Millisecond)
	reg.markRouteSuccess(slow, "", 40*time.Millisecond)
	if w := reg.weight(fast); w != 1 {
		t.Fatalf("fastest worker weight = %v, want 1", w)
	}
	if w := reg.weight(slow); w != 0.25 {
		t.Fatalf("slow worker weight = %v, want 0.25", w)
	}
}

func TestSnapshotSortedByID(t *testing.T) {
	ps := []*probeWorker{newProbeWorker(t), newProbeWorker(t), newProbeWorker(t)}
	reg := newTestRegistry(t, ps)
	snap := reg.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].ID >= snap[i].ID {
			t.Fatalf("snapshot not sorted: %s before %s", snap[i-1].ID, snap[i].ID)
		}
	}
}

func TestRegistryRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewRegistry(nil, 8, RegistryConfig{}, newFakeClock()); err == nil {
		t.Fatal("empty registry must error")
	}
	c := NewClient("http://same", nil, newFakeClock(), Backoff{}, 0)
	d := NewClient("http://same", nil, newFakeClock(), Backoff{}, 1)
	if _, err := NewRegistry([]*Client{c, d}, 8, RegistryConfig{}, newFakeClock()); err == nil {
		t.Fatal("duplicate worker IDs must error")
	}
}
