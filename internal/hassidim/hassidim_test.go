package hassidim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/hassidim"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lru() cache.Factory { return func() cache.Policy { return cache.NewLRU() } }

// TestGreedyLRUEqualsPaperModel: Hassidim's model restricted to the
// never-delay schedule with LRU eviction is exactly the paper model's
// S_LRU — same per-core faults and same makespan.
func TestGreedyLRUEqualsPaperModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		k := p + rng.Intn(6)
		tau := rng.Intn(4)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 1 + rng.Intn(40)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + rng.Intn(6))
			}
			rs[j] = s
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		g, err := hassidim.GreedyLRU(in)
		if err != nil {
			return false
		}
		simRes, err := sim.Run(in, policy.NewShared(lru()), nil)
		if err != nil {
			return false
		}
		if g.Makespan != simRes.Makespan {
			return false
		}
		for j := range rs {
			if g.Faults[j] != simRes.Faults[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMakespanSingleCore(t *testing.T) {
	// p=1: delaying is pointless; makespan = n + misses(Belady)·τ.
	seq := core.Sequence{0, 1, 2, 0, 1}
	in := core.Instance{R: core.RequestSet{seq}, P: core.Params{K: 2, Tau: 2}}
	got, _, err := hassidim.MinMakespan(in, hassidim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Belady with K=2: misses on 0,1,2 and then 0 or 1 — 4 misses.
	want := int64(5 + 4*2)
	if got != want {
		t.Fatalf("makespan = %d, want %d", got, want)
	}
}

func TestMinMakespanEmptyAndTrivial(t *testing.T) {
	in := core.Instance{R: core.RequestSet{{}}, P: core.Params{K: 1, Tau: 3}}
	got, _, err := hassidim.MinMakespan(in, hassidim.Options{})
	if err != nil || got != 0 {
		t.Fatalf("empty: makespan=%d err=%v", got, err)
	}
	in = core.Instance{R: core.RequestSet{{7}}, P: core.Params{K: 1, Tau: 3}}
	got, _, err = hassidim.MinMakespan(in, hassidim.Options{})
	if err != nil || got != 4 {
		t.Fatalf("single fault: makespan=%d err=%v", got, err)
	}
}

// TestDelayPowerNeverHurts: the delaying optimum is never above the
// no-delay optimum.
func TestDelayPowerNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(2)
		k := p + rng.Intn(2)
		tau := rng.Intn(3)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 1 + rng.Intn(4)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + rng.Intn(3))
			}
			rs[j] = s
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		free, _, err := hassidim.MinMakespan(in, hassidim.Options{})
		if err != nil {
			return false
		}
		strict, _, err := hassidim.MinMakespan(in, hassidim.Options{NoDelay: true})
		if err != nil {
			return false
		}
		return free <= strict
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDelayPowerStrictlyHelps is the paper's motivating separation: the
// scheduling power it removes from the model is real. On this instance
// (found by exhaustive search) delaying core 1's re-requests while core
// 0 juggles three pages in two cells saves two time units over every
// no-delay schedule: optimal makespan 10 with delays vs 12 without.
func TestDelayPowerStrictlyHelps(t *testing.T) {
	in := core.Instance{
		R: core.RequestSet{
			{2, 1, 2, 0},
			{102, 102},
		},
		P: core.Params{K: 2, Tau: 2},
	}
	free, _, err := hassidim.MinMakespan(in, hassidim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	strict, _, err := hassidim.MinMakespan(in, hassidim.Options{NoDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	if free >= strict {
		t.Fatalf("delaying should strictly help: free=%d strict=%d", free, strict)
	}
}

// TestNoDelayMakespanLowerBoundsOnline: the no-delay optimum lower
// bounds any strategy in the paper model.
func TestNoDelayMakespanLowerBoundsOnline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(2)
		k := p + rng.Intn(2)
		tau := rng.Intn(3)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 1 + rng.Intn(4)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + rng.Intn(3))
			}
			rs[j] = s
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		strict, _, err := hassidim.MinMakespan(in, hassidim.Options{NoDelay: true})
		if err != nil {
			return false
		}
		online, err := sim.Run(in, policy.NewShared(lru()), nil)
		if err != nil {
			return false
		}
		return strict <= online.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDelayMakespanConsistentWithFTF: minimizing faults (Algorithm 1)
// and minimizing makespan are different objectives, but on a single
// core they coincide: makespan = n + faults·τ.
func TestNoDelayMakespanConsistentWithFTF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		seq := make(core.Sequence, n)
		for i := range seq {
			seq[i] = core.PageID(rng.Intn(3))
		}
		tau := rng.Intn(3)
		in := core.Instance{R: core.RequestSet{seq}, P: core.Params{K: 2, Tau: tau}}
		mk, _, err := hassidim.MinMakespan(in, hassidim.Options{NoDelay: true})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if mk != int64(n)+sol.Faults*int64(tau) {
			t.Fatalf("trial %d: makespan %d != n + faults·τ = %d", trial, mk, int64(n)+sol.Faults*int64(tau))
		}
	}
}

func TestMinMakespanRejectsNonDisjoint(t *testing.T) {
	in := core.Instance{R: core.RequestSet{{1}, {1}}, P: core.Params{K: 2, Tau: 0}}
	if _, _, err := hassidim.MinMakespan(in, hassidim.Options{}); err == nil {
		t.Fatal("non-disjoint input should be rejected")
	}
	if _, err := hassidim.GreedyLRU(in); err == nil {
		t.Fatal("greedy should reject non-disjoint input")
	}
}

func TestMinMakespanStateLimit(t *testing.T) {
	rs := core.RequestSet{
		{0, 1, 2, 0, 1, 2, 0, 1},
		{10, 11, 12, 10, 11, 12, 10, 11},
	}
	in := core.Instance{R: rs, P: core.Params{K: 3, Tau: 2}}
	if _, _, err := hassidim.MinMakespan(in, hassidim.Options{MaxStates: 100}); err == nil {
		t.Fatal("state limit should trip")
	}
}

func TestBatchLRU(t *testing.T) {
	// Two cores, each alternating two pages; K=2 fits one working set.
	rs := core.RequestSet{}
	for j := 0; j < 2; j++ {
		s := make(core.Sequence, 20)
		for i := range s {
			s[i] = core.PageID(100*j + i%2)
		}
		rs = append(rs, s)
	}
	in := core.Instance{R: rs, P: core.Params{K: 2, Tau: 3}}
	b, err := hassidim.BatchLRU(in, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	// Each batch: 2 cold faults then hits: makespan ≈ 2(τ+1) + 18 per
	// batch; faults exactly 2 per core.
	if b.Faults[0] != 2 || b.Faults[1] != 2 {
		t.Fatalf("faults = %v, want [2 2]", b.Faults)
	}
	want := int64(2 * (2*4 + 18))
	if b.Makespan != want {
		t.Fatalf("makespan = %d, want %d", b.Makespan, want)
	}
	// The no-delay greedy with the same cache thrashes in comparison.
	g, err := hassidim.GreedyLRU(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalFaults() <= b.TotalFaults() {
		t.Fatalf("greedy (%d faults) should thrash vs batching (%d)", g.TotalFaults(), b.TotalFaults())
	}
}

func TestBatchLRUValidation(t *testing.T) {
	rs := core.RequestSet{{1}, {2}}
	in := core.Instance{R: rs, P: core.Params{K: 2, Tau: 0}}
	cases := [][][]int{
		{{0}},         // core 1 uncovered
		{{0, 0}, {1}}, // repeated
		{{0, 5}},      // out of range
	}
	for i, b := range cases {
		if _, err := hassidim.BatchLRU(in, b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Exhaustive delaying OPT is at least as good as any batching.
	opt, _, err := hassidim.MinMakespan(in, hassidim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := hassidim.BatchLRU(in, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if opt > b.Makespan {
		t.Fatalf("OPT %d worse than batching %d", opt, b.Makespan)
	}
}
