// Package hassidim implements the comparison model the paper argues
// against: Hassidim's scheduler-empowered multicore paging (Innovations
// in Computer Science 2010), in which the paging algorithm may *delay*
// sequences — each timestep it chooses which ready cores to serve — and
// the objective is the makespan. The paper's model (package sim) is the
// restriction that every ready request must be served immediately.
//
// The package provides:
//
//   - Greedy: the no-delay policy (serve every ready core, evict with a
//     pluggable shared policy). On disjoint inputs Greedy(LRU)
//     reproduces the paper-model simulator exactly — the executable
//     statement that our model is Hassidim's minus scheduling power.
//   - MinMakespan: breadth-first search over schedules (subsets of
//     ready cores to serve, eviction choices) computing the optimal
//     makespan, with the delay power switchable off. Exponential;
//     small instances only. Comparing the two modes quantifies how much
//     the scheduling power the paper removes is actually worth.
//
// Timing matches package sim: a hit occupies its core for one step, a
// fault for τ+1 steps; a fetched page occupies its cell, unevictable,
// from the start of the fetch; the core is ready again the step after
// its service completes.
package hassidim

import (
	"fmt"
	"math"
	"sort"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// Options bounds the exhaustive search.
type Options struct {
	// NoDelay restricts MinMakespan to schedules that serve every ready
	// core every step (the paper's model); only eviction choices remain.
	NoDelay bool
	// MaxStates aborts the search beyond this many distinct states
	// (default 2,000,000).
	MaxStates int
	// MaxTime aborts the search beyond this makespan horizon (default
	// (n + faults·τ) with every request faulting, plus slack).
	MaxTime int64
}

const defaultMaxStates = 2_000_000

// Stats reports search effort.
type Stats struct {
	States int
	Steps  int64 // timesteps explored (BFS depth reached)
}

// state is one search node; remain[c] > 0 means core c is fetching
// fetch[c] with that many steps left.
type state struct {
	idx    []int16
	remain []int16
	fetch  []core.PageID
	cache  []core.PageID // sorted
}

func (s *state) clone() *state {
	return &state{
		idx:    append([]int16(nil), s.idx...),
		remain: append([]int16(nil), s.remain...),
		fetch:  append([]core.PageID(nil), s.fetch...),
		cache:  append([]core.PageID(nil), s.cache...),
	}
}

func (s *state) key() string {
	buf := make([]byte, 0, 2*len(s.idx)+4*len(s.cache)+len(s.fetch))
	for i := range s.idx {
		buf = append(buf, byte(s.idx[i]), byte(s.remain[i]), byte(s.fetch[i]), byte(s.fetch[i]>>8))
	}
	buf = append(buf, 0xFE)
	for _, p := range s.cache {
		buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return string(buf)
}

func (s *state) cacheHas(p core.PageID) bool {
	i := sort.Search(len(s.cache), func(i int) bool { return s.cache[i] >= p })
	return i < len(s.cache) && s.cache[i] == p
}

func (s *state) cacheAdd(p core.PageID) {
	i := sort.Search(len(s.cache), func(i int) bool { return s.cache[i] >= p })
	s.cache = append(s.cache, 0)
	copy(s.cache[i+1:], s.cache[i:])
	s.cache[i] = p
}

func (s *state) cacheDel(p core.PageID) {
	i := sort.Search(len(s.cache), func(i int) bool { return s.cache[i] >= p })
	if i < len(s.cache) && s.cache[i] == p {
		s.cache = append(s.cache[:i], s.cache[i+1:]...)
	}
}

// inFlight reports whether page p is currently being fetched.
func (s *state) inFlight(p core.PageID) bool {
	for c := range s.remain {
		if s.remain[c] > 0 && s.fetch[c] == p {
			return true
		}
	}
	return false
}

// MinMakespan computes the optimal makespan over all schedules (delaying
// allowed unless opts.NoDelay). The request set must be disjoint.
func MinMakespan(inst core.Instance, opts Options) (int64, Stats, error) {
	var st Stats
	if err := inst.Validate(); err != nil {
		return 0, st, err
	}
	if !inst.R.Disjoint() {
		return 0, st, sim.ErrNotDisjoint
	}
	p := inst.R.NumCores()
	tau := int16(inst.P.Tau)
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	horizon := opts.MaxTime
	if horizon <= 0 {
		horizon = int64(inst.R.TotalLen())*int64(inst.P.Tau+2) + 4
	}

	start := &state{
		idx:    make([]int16, p),
		remain: make([]int16, p),
		fetch:  make([]core.PageID, p),
		cache:  nil,
	}
	done := func(s *state) bool {
		for c := 0; c < p; c++ {
			if int(s.idx[c]) < len(inst.R[c]) || s.remain[c] > 0 {
				return false
			}
		}
		return true
	}

	visited := map[string]bool{start.key(): true}
	layer := []*state{start}
	for t := int64(0); t <= horizon; t++ {
		st.Steps = t
		// Each layer state reflects the world at time t: fetch
		// completions scheduled for t have already been applied when the
		// state was advanced into this layer.
		var next []*state
		push := func(s *state) error {
			k := s.key()
			if visited[k] {
				return nil
			}
			visited[k] = true
			st.States++
			if st.States > maxStates {
				return fmt.Errorf("hassidim: state limit %d exceeded", maxStates)
			}
			next = append(next, s)
			return nil
		}
		for _, s := range layer {
			// Advance fetches into time t.
			adv := s.clone()
			for c := 0; c < p; c++ {
				if adv.remain[c] > 0 {
					adv.remain[c]--
					if adv.remain[c] == 0 {
						adv.fetch[c] = core.NoPage
						adv.idx[c]++ // the faulting request completes
					}
				}
			}
			if done(adv) {
				return t, st, nil
			}
			// Ready cores.
			var ready []int
			for c := 0; c < p; c++ {
				if adv.remain[c] == 0 && int(adv.idx[c]) < len(inst.R[c]) {
					ready = append(ready, c)
				}
			}
			if err := expand(inst, adv, ready, tau, opts.NoDelay, push); err != nil {
				return 0, st, err
			}
		}
		if len(next) == 0 {
			break // every state stuck; fall through to horizon error
		}
		layer = next
	}
	return 0, st, fmt.Errorf("hassidim: horizon %d exceeded", horizon)
}

// expand enumerates all serve/evict decisions for the ready cores and
// pushes the resulting states.
func expand(inst core.Instance, s *state, ready []int, tau int16, noDelay bool, push func(*state) error) error {
	if len(ready) == 0 {
		return push(s)
	}
	// Pinned pages: requests of cores scheduled this step; built up as
	// the subset recursion decides to serve cores.
	var rec func(i int, cur *state, servedAny bool, pinned map[core.PageID]bool) error
	rec = func(i int, cur *state, servedAny bool, pinned map[core.PageID]bool) error {
		if i == len(ready) {
			if !servedAny && !noDelay {
				// Pure-delay step: only useful while something fetches;
				// push regardless — the visited set dedups no-ops, and
				// the horizon bounds the walk.
			}
			return push(cur)
		}
		c := ready[i]
		pg := inst.R[c][cur.idx[c]]

		// Option A: delay core c (not available in no-delay mode).
		if !noDelay {
			if err := rec(i+1, cur, servedAny, pinned); err != nil {
				return err
			}
		}

		// Option B: serve core c.
		if cur.cacheHas(pg) && !cur.inFlight(pg) {
			ns := cur.clone()
			ns.idx[c]++
			np := pinned // hits do not pin beyond this step's semantics
			return recWith(rec, i+1, ns, true, np, pg)
		}
		if cur.cacheHas(pg) {
			// In-flight join is impossible on disjoint inputs.
			return nil
		}
		// Fault: free cell or victim.
		if len(cur.cache) < inst.P.K {
			ns := cur.clone()
			ns.cacheAdd(pg)
			ns.fetch[c] = pg
			ns.remain[c] = tau + 1
			if err := recWith(rec, i+1, ns, true, pinned, pg); err != nil {
				return err
			}
			return nil
		}
		for _, v := range cur.cache {
			if cur.inFlight(v) || pinned[v] || v == pg {
				continue
			}
			ns := cur.clone()
			ns.cacheDel(v)
			ns.cacheAdd(pg)
			ns.fetch[c] = pg
			ns.remain[c] = tau + 1
			if err := recWith(rec, i+1, ns, true, pinned, pg); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, s, false, map[core.PageID]bool{})
}

// recWith recurses with pg added to the pinned set.
func recWith(rec func(int, *state, bool, map[core.PageID]bool) error,
	i int, s *state, served bool, pinned map[core.PageID]bool, pg core.PageID) error {
	np := make(map[core.PageID]bool, len(pinned)+1)
	for k := range pinned {
		np[k] = true
	}
	np[pg] = true
	return rec(i, s, served, np)
}

// BatchLRU runs the batching schedule behind Hassidim's Ω(τ/α) lower
// bound: cores are served batch by batch — cores outside the current
// batch are delayed entirely — with LRU eviction inside the batch. When
// each batch's working set fits the (smaller) cache, every batch runs at
// hit speed after its cold misses, which is how a delay-empowered
// offline with cache K/α beats thrashing LRU with cache K.
func BatchLRU(inst core.Instance, batches [][]int) (GreedyResult, error) {
	if err := inst.Validate(); err != nil {
		return GreedyResult{}, err
	}
	if !inst.R.Disjoint() {
		return GreedyResult{}, sim.ErrNotDisjoint
	}
	p := inst.R.NumCores()
	seen := make([]bool, p)
	for _, b := range batches {
		for _, c := range b {
			if c < 0 || c >= p || seen[c] {
				return GreedyResult{}, fmt.Errorf("hassidim: invalid or repeated core %d in batches", c)
			}
			seen[c] = true
		}
	}
	for c := 0; c < p; c++ {
		if !seen[c] && len(inst.R[c]) > 0 {
			return GreedyResult{}, fmt.Errorf("hassidim: core %d not covered by any batch", c)
		}
	}
	res := GreedyResult{Faults: make([]int64, p)}
	var t, seq int64
	resident := make(map[core.PageID]int64)
	for _, batch := range batches {
		sub := make(core.RequestSet, p)
		for _, c := range batch {
			sub[c] = inst.R[c]
		}
		// Run the batch in isolation, offset by the current time; the
		// recency counter threads through so carried pages age correctly.
		g, nseq, err := greedyLRUFrom(core.Instance{R: sub, P: inst.P}, resident, seq)
		if err != nil {
			return GreedyResult{}, err
		}
		seq = nseq
		for c := range g.Faults {
			res.Faults[c] += g.Faults[c]
		}
		t += g.Makespan
	}
	res.Makespan = t
	return res, nil
}

// greedyLRUFrom is GreedyLRU with a persistent resident map (pages kept
// across batches can hit) and a threaded recency counter.
func greedyLRUFrom(inst core.Instance, resident map[core.PageID]int64, seq int64) (GreedyResult, int64, error) {
	p := inst.R.NumCores()
	res := GreedyResult{Faults: make([]int64, p)}
	idx := make([]int, p)
	remain := make([]int, p)
	fetch := make([]core.PageID, p)
	inflight := make(map[core.PageID]bool)
	tau := inst.P.Tau
	finished := func() bool {
		for c := 0; c < p; c++ {
			if idx[c] < len(inst.R[c]) || remain[c] > 0 {
				return false
			}
		}
		return true
	}
	for t := int64(0); ; t++ {
		for c := 0; c < p; c++ {
			if remain[c] > 0 {
				remain[c]--
				if remain[c] == 0 {
					delete(inflight, fetch[c])
					idx[c]++
				}
			}
		}
		if finished() {
			res.Makespan = t
			return res, seq, nil
		}
		for c := 0; c < p; c++ {
			if remain[c] > 0 || idx[c] >= len(inst.R[c]) {
				continue
			}
			pg := inst.R[c][idx[c]]
			seq++
			if _, ok := resident[pg]; ok && !inflight[pg] {
				resident[pg] = seq
				idx[c]++
				continue
			}
			res.Faults[c]++
			if len(resident) >= inst.P.K {
				victim, best := core.NoPage, int64(math.MaxInt64)
				for q, last := range resident {
					if inflight[q] {
						continue
					}
					if last < best || (last == best && (victim == core.NoPage || q < victim)) {
						victim, best = q, last
					}
				}
				if victim == core.NoPage {
					return res, seq, fmt.Errorf("hassidim: no evictable page at t=%d", t)
				}
				delete(resident, victim)
			}
			resident[pg] = seq
			inflight[pg] = true
			fetch[c] = pg
			remain[c] = tau + 1
		}
	}
}

// GreedyResult mirrors sim.Result for the greedy no-delay run.
type GreedyResult struct {
	Faults   []int64
	Makespan int64
}

// TotalFaults sums the per-core fault counts.
func (g GreedyResult) TotalFaults() int64 {
	var s int64
	for _, f := range g.Faults {
		s += f
	}
	return s
}

// GreedyLRU serves every ready core each step (no delaying) and evicts
// the least recently used resident page, cores in increasing order
// within a step. On disjoint inputs this is exactly the paper model's
// S_LRU — verified against package sim in the tests — expressed inside
// Hassidim's model as the schedule that never delays.
func GreedyLRU(inst core.Instance) (GreedyResult, error) {
	if err := inst.Validate(); err != nil {
		return GreedyResult{}, err
	}
	if !inst.R.Disjoint() {
		return GreedyResult{}, sim.ErrNotDisjoint
	}
	p := inst.R.NumCores()
	res := GreedyResult{Faults: make([]int64, p)}
	idx := make([]int, p)
	remain := make([]int, p)
	fetch := make([]core.PageID, p)
	resident := make(map[core.PageID]int64) // page → last use time
	inflight := make(map[core.PageID]bool)
	tau := inst.P.Tau

	finished := func() bool {
		for c := 0; c < p; c++ {
			if idx[c] < len(inst.R[c]) || remain[c] > 0 {
				return false
			}
		}
		return true
	}
	for t := int64(0); ; t++ {
		for c := 0; c < p; c++ {
			if remain[c] > 0 {
				remain[c]--
				if remain[c] == 0 {
					delete(inflight, fetch[c])
					idx[c]++
				}
			}
		}
		if finished() {
			res.Makespan = t
			return res, nil
		}
		for c := 0; c < p; c++ {
			if remain[c] > 0 || idx[c] >= len(inst.R[c]) {
				continue
			}
			pg := inst.R[c][idx[c]]
			if _, ok := resident[pg]; ok && !inflight[pg] {
				resident[pg] = t
				idx[c]++
				continue
			}
			res.Faults[c]++
			if len(resident) >= inst.P.K {
				victim, best := core.NoPage, int64(math.MaxInt64)
				for q, last := range resident {
					if inflight[q] {
						continue
					}
					if last < best || (last == best && (victim == core.NoPage || q < victim)) {
						victim, best = q, last
					}
				}
				if victim == core.NoPage {
					return res, fmt.Errorf("hassidim: no evictable page at t=%d", t)
				}
				delete(resident, victim)
			}
			resident[pg] = t
			inflight[pg] = true
			fetch[c] = pg
			remain[c] = tau + 1
		}
	}
}
