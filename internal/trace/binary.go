package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mcpaging/internal/core"
)

// Binary format: a compact varint encoding for large traces.
//
//	magic "MCPT" + version byte 1
//	uvarint p
//	per core: uvarint length, then delta-zigzag varint page IDs
//
// Delta encoding exploits the locality of generated workloads; loop and
// markov traces compress to ~1 byte per request.

var binaryMagic = []byte{'M', 'C', 'P', 'T', 1}

// WriteBinary serialises a request set in the binary format.
func WriteBinary(w io.Writer, r core.RequestSet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(r.NumCores())); err != nil {
		return err
	}
	for _, seq := range r {
		if err := putUvarint(uint64(len(seq))); err != nil {
			return err
		}
		prev := int64(0)
		for _, pg := range seq {
			if err := putVarint(int64(pg) - prev); err != nil {
				return err
			}
			prev = int64(pg)
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format, materializing the full request
// set. Callers that can process requests core by core should use
// Decoder instead, which never holds more than one caller-sized buffer
// of decoded pages.
func ReadBinary(r io.Reader) (core.RequestSet, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return d.ReadAll()
}

// Decoder streams a binary trace without materializing it: the header
// is parsed on construction, then each core's sequence is consumed
// with NextCore followed by Read calls into a caller-owned buffer. The
// caller controls all allocation, so a billion-request trace can feed
// a consumer through a fixed-size buffer.
//
//	d, _ := trace.NewDecoder(f)
//	buf := make([]core.PageID, 64<<10)
//	for {
//		n, err := d.NextCore()      // io.EOF after the last core
//		...
//		for {
//			m, err := d.Read(buf)   // io.EOF at the end of the core
//			consume(buf[:m])
//			...
//		}
//	}
type Decoder struct {
	br *bufio.Reader
	p  int // core count from the header

	decoded int   // cores whose NextCore has been issued
	left    int   // requests remaining in the current core
	prev    int64 // delta-decoding accumulator for the current core
}

// NewDecoder parses the binary header (magic and core count) and
// positions the stream at the first core. The reader is buffered
// internally; r is consumed exactly up to the end of the trace.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	head := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short binary header: %w", err)
	}
	for i, b := range binaryMagic {
		if head[i] != b {
			return nil, fmt.Errorf("trace: bad binary magic")
		}
	}
	p, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if p < 1 || p > 1<<20 {
		return nil, fmt.Errorf("trace: implausible core count %d", p)
	}
	return &Decoder{br: br, p: int(p)}, nil
}

// NumCores returns the trace's core count, known from the header.
func (d *Decoder) NumCores() int { return d.p }

// NextCore advances to the next core's sequence and returns its
// length. It returns io.EOF after the last core. The previous core's
// sequence must be fully consumed first (Read returned io.EOF).
func (d *Decoder) NextCore() (int, error) {
	if d.left != 0 {
		return 0, fmt.Errorf("trace: NextCore with %d requests unread in core %d", d.left, d.decoded-1)
	}
	if d.decoded == d.p {
		return 0, io.EOF
	}
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, err
	}
	if n > 1<<28 {
		return 0, fmt.Errorf("trace: implausible sequence length %d", n)
	}
	d.decoded++
	d.left = int(n)
	d.prev = 0
	return int(n), nil
}

// Read decodes up to len(buf) pages of the current core's sequence
// into buf and returns the count. At the end of the core it returns
// 0, io.EOF; call NextCore to proceed.
func (d *Decoder) Read(buf []core.PageID) (int, error) {
	if d.left == 0 {
		return 0, io.EOF
	}
	n := len(buf)
	if n > d.left {
		n = d.left
	}
	for i := 0; i < n; i++ {
		delta, err := binary.ReadVarint(d.br)
		if err != nil {
			return i, err
		}
		d.prev += delta
		if d.prev < 0 || d.prev > 1<<31-1 {
			return i, fmt.Errorf("trace: page %d out of range", d.prev)
		}
		buf[i] = core.PageID(d.prev)
	}
	d.left -= n
	return n, nil
}

// ReadAll drains the remaining cores into a request set — the
// materializing path ReadBinary is built on.
func (d *Decoder) ReadAll() (core.RequestSet, error) {
	rs := make(core.RequestSet, 0, d.p-d.decoded)
	for {
		n, err := d.NextCore()
		if err == io.EOF {
			return rs, nil
		}
		if err != nil {
			return nil, err
		}
		seq := make(core.Sequence, n)
		for off := 0; off < n; {
			m, err := d.Read(seq[off:])
			if err != nil {
				return nil, err
			}
			off += m
		}
		rs = append(rs, seq)
	}
}

// ReadAuto detects the format (text or binary) from the leading bytes
// and parses accordingly.
func ReadAuto(r io.Reader) (core.RequestSet, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: cannot peek header: %w", err)
	}
	if string(head) == "MCPT" {
		return ReadBinary(br)
	}
	return Read(br)
}
