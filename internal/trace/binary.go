package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mcpaging/internal/core"
)

// Binary format: a compact varint encoding for large traces.
//
//	magic "MCPT" + version byte 1
//	uvarint p
//	per core: uvarint length, then delta-zigzag varint page IDs
//
// Delta encoding exploits the locality of generated workloads; loop and
// markov traces compress to ~1 byte per request.

var binaryMagic = []byte{'M', 'C', 'P', 'T', 1}

// WriteBinary serialises a request set in the binary format.
func WriteBinary(w io.Writer, r core.RequestSet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(r.NumCores())); err != nil {
		return err
	}
	for _, seq := range r {
		if err := putUvarint(uint64(len(seq))); err != nil {
			return err
		}
		prev := int64(0)
		for _, pg := range seq {
			if err := putVarint(int64(pg) - prev); err != nil {
				return err
			}
			prev = int64(pg)
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (core.RequestSet, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short binary header: %w", err)
	}
	for i, b := range binaryMagic {
		if head[i] != b {
			return nil, fmt.Errorf("trace: bad binary magic")
		}
	}
	p, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if p < 1 || p > 1<<20 {
		return nil, fmt.Errorf("trace: implausible core count %d", p)
	}
	rs := make(core.RequestSet, p)
	for j := range rs {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if n > 1<<28 {
			return nil, fmt.Errorf("trace: implausible sequence length %d", n)
		}
		seq := make(core.Sequence, n)
		prev := int64(0)
		for i := range seq {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			prev += d
			if prev < 0 || prev > 1<<31-1 {
				return nil, fmt.Errorf("trace: page %d out of range", prev)
			}
			seq[i] = core.PageID(prev)
		}
		rs[j] = seq
	}
	return rs, nil
}

// ReadAuto detects the format (text or binary) from the leading bytes
// and parses accordingly.
func ReadAuto(r io.Reader) (core.RequestSet, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("trace: cannot peek header: %w", err)
	}
	if string(head) == "MCPT" {
		return ReadBinary(br)
	}
	return Read(br)
}
