package trace

import (
	"strings"
	"testing"
)

func TestReadAddressTrace(t *testing.T) {
	in := `
# comment line
0 0x1000
1 0x2000
0 4097
0 0x3000
1 0x2FFF
`
	rs, err := ReadAddressTrace(strings.NewReader(in), 12)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumCores() != 2 {
		t.Fatalf("cores = %d", rs.NumCores())
	}
	// 0x1000>>12 = 1, 0x2000>>12 = 2, 4097>>12 = 1, 0x3000>>12 = 3,
	// 0x2FFF>>12 = 2 — dense IDs in first-appearance order: 1→0, 2→1, 3→2.
	if got := rs[0]; len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("core 0 = %v", got)
	}
	if got := rs[1]; len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Fatalf("core 1 = %v", got)
	}
}

func TestReadAddressTracePageShiftZero(t *testing.T) {
	rs, err := ReadAddressTrace(strings.NewReader("0 5\n0 5\n0 6\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0]) != 3 || rs[0][0] != rs[0][1] || rs[0][0] == rs[0][2] {
		t.Fatalf("got %v", rs[0])
	}
}

func TestReadAddressTraceErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"0\n",            // missing field
		"x 0x10\n",       // bad core
		"0 zz\n",         // bad address
		"-1 0x10\n",      // negative core
		"0 0x10 extra\n", // too many fields
	}
	for i, c := range cases {
		if _, err := ReadAddressTrace(strings.NewReader(c), 12); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := ReadAddressTrace(strings.NewReader("0 1\n"), 60); err == nil {
		t.Error("silly page shift should fail")
	}
}
