package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
)

func randomSet(rng *rand.Rand) core.RequestSet {
	rs := make(core.RequestSet, 1+rng.Intn(4))
	for j := range rs {
		s := make(core.Sequence, rng.Intn(80))
		for i := range s {
			s[i] = core.PageID(rng.Intn(1 << 18))
		}
		rs[j] = s
	}
	return rs
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomSet(rng)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, rs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryCompact(t *testing.T) {
	// A loop trace delta-encodes to ~1 byte per request; the text format
	// needs several.
	seq := make(core.Sequence, 10000)
	for i := range seq {
		seq[i] = core.PageID(i % 64)
	}
	rs := core.RequestSet{seq}
	var txt, bin bytes.Buffer
	if err := Write(&txt, rs); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, rs); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len()/2 {
		t.Fatalf("binary %d bytes vs text %d: expected at least 2x compaction", bin.Len(), txt.Len())
	}
}

func TestReadAutoDetects(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3}, {7}}
	var txt, bin bytes.Buffer
	if err := Write(&txt, rs); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuto(&txt)
	if err != nil || !reflect.DeepEqual(got, rs) {
		t.Fatalf("auto text: %v %v", got, err)
	}
	got, err = ReadAuto(&bin)
	if err != nil || !reflect.DeepEqual(got, rs) {
		t.Fatalf("auto binary: %v %v", got, err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		[]byte("MCP"),
		[]byte("MCPT\x02"),             // wrong version
		[]byte("MCPT\x01"),             // missing body
		[]byte("MCPT\x01\x00"),         // zero cores
		[]byte("MCPT\x01\x01\x05\x02"), // truncated payload
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// FuzzReadAuto ensures arbitrary input never panics the parsers.
func FuzzReadAuto(f *testing.F) {
	rs := core.RequestSet{{1, 2, 3}, {9, 9}}
	var txt, bin bytes.Buffer
	Write(&txt, rs)
	WriteBinary(&bin, rs)
	f.Add(txt.Bytes())
	f.Add(bin.Bytes())
	f.Add([]byte("mcpaging-trace v1 cores 1 core 0 1 7"))
	f.Add([]byte("MCPT\x01\x01\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := ReadAuto(bytes.NewReader(data))
		if err == nil {
			// Whatever parsed must re-serialise cleanly.
			var buf bytes.Buffer
			if err := Write(&buf, rs); err != nil {
				t.Fatalf("re-serialise failed: %v", err)
			}
		}
	})
}
