package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
)

func randomSet(rng *rand.Rand) core.RequestSet {
	rs := make(core.RequestSet, 1+rng.Intn(4))
	for j := range rs {
		s := make(core.Sequence, rng.Intn(80))
		for i := range s {
			s[i] = core.PageID(rng.Intn(1 << 18))
		}
		rs[j] = s
	}
	return rs
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomSet(rng)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, rs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryCompact(t *testing.T) {
	// A loop trace delta-encodes to ~1 byte per request; the text format
	// needs several.
	seq := make(core.Sequence, 10000)
	for i := range seq {
		seq[i] = core.PageID(i % 64)
	}
	rs := core.RequestSet{seq}
	var txt, bin bytes.Buffer
	if err := Write(&txt, rs); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, rs); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len()/2 {
		t.Fatalf("binary %d bytes vs text %d: expected at least 2x compaction", bin.Len(), txt.Len())
	}
}

func TestReadAutoDetects(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3}, {7}}
	var txt, bin bytes.Buffer
	if err := Write(&txt, rs); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuto(&txt)
	if err != nil || !reflect.DeepEqual(got, rs) {
		t.Fatalf("auto text: %v %v", got, err)
	}
	got, err = ReadAuto(&bin)
	if err != nil || !reflect.DeepEqual(got, rs) {
		t.Fatalf("auto binary: %v %v", got, err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		[]byte("MCP"),
		[]byte("MCPT\x02"),             // wrong version
		[]byte("MCPT\x01"),             // missing body
		[]byte("MCPT\x01\x00"),         // zero cores
		[]byte("MCPT\x01\x01\x05\x02"), // truncated payload
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// TestDecoderStreamsInChunks round-trips traces through the streaming
// decoder with a deliberately tiny buffer, so every core crosses many
// Read calls, and checks the reassembled set — including empty
// sequences, which exercise the zero-length NextCore path.
func TestDecoderStreamsInChunks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomSet(rng)
		var bin bytes.Buffer
		if err := WriteBinary(&bin, rs); err != nil {
			return false
		}
		d, err := NewDecoder(&bin)
		if err != nil {
			return false
		}
		if d.NumCores() != len(rs) {
			return false
		}
		buf := make([]core.Sequence, 0, len(rs))
		chunk := make(core.Sequence, 7)
		for {
			n, err := d.NextCore()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			seq := make(core.Sequence, 0, n)
			for {
				m, err := d.Read(chunk)
				if err == io.EOF {
					break
				}
				if err != nil {
					return false
				}
				seq = append(seq, chunk[:m]...)
			}
			buf = append(buf, seq)
		}
		got := core.RequestSet(buf)
		if len(got) != len(rs) {
			return false
		}
		for c := range rs {
			if len(got[c]) != len(rs[c]) {
				return false
			}
			for i := range rs[c] {
				if got[c][i] != rs[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderMisuse pins the decoder's contract errors: NextCore with
// pages unread, NextCore past the last core, and reads on a finished
// core.
func TestDecoderMisuse(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3}, {7}}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, rs); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.NextCore(); n != 3 || err != nil {
		t.Fatalf("NextCore = %d, %v", n, err)
	}
	if _, err := d.NextCore(); err == nil {
		t.Fatal("NextCore with unread pages should fail")
	}
	buf := make(core.Sequence, 8)
	if m, err := d.Read(buf); m != 3 || err != nil {
		t.Fatalf("Read = %d, %v", m, err)
	}
	if _, err := d.Read(buf); err != io.EOF {
		t.Fatalf("Read at core end = %v, want io.EOF", err)
	}
	if n, err := d.NextCore(); n != 1 || err != nil {
		t.Fatalf("NextCore = %d, %v", n, err)
	}
	if m, err := d.Read(buf); m != 1 || err != nil {
		t.Fatalf("Read = %d, %v", m, err)
	}
	if _, err := d.NextCore(); err != io.EOF {
		t.Fatalf("NextCore past last core = %v, want io.EOF", err)
	}
}

// FuzzReadAuto ensures arbitrary input never panics the parsers.
func FuzzReadAuto(f *testing.F) {
	rs := core.RequestSet{{1, 2, 3}, {9, 9}}
	var txt, bin bytes.Buffer
	Write(&txt, rs)
	WriteBinary(&bin, rs)
	f.Add(txt.Bytes())
	f.Add(bin.Bytes())
	f.Add([]byte("mcpaging-trace v1 cores 1 core 0 1 7"))
	f.Add([]byte("MCPT\x01\x01\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := ReadAuto(bytes.NewReader(data))
		if err == nil {
			// Whatever parsed must re-serialise cleanly.
			var buf bytes.Buffer
			if err := Write(&buf, rs); err != nil {
				t.Fatalf("re-serialise failed: %v", err)
			}
		}
	})
}
