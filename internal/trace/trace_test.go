package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
)

func TestRoundTrip(t *testing.T) {
	rs := core.RequestSet{
		{1, 2, 3, 1, 2, 3},
		{},
		{100000, 0, 42},
	}
	var buf bytes.Buffer
	if err := Write(&buf, rs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, rs)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := make(core.RequestSet, 1+rng.Intn(5))
		for j := range rs {
			s := make(core.Sequence, rng.Intn(100))
			for i := range s {
				s[i] = core.PageID(rng.Intn(1 << 20))
			}
			rs[j] = s
		}
		var buf bytes.Buffer
		if err := Write(&buf, rs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, rs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus v1 cores 1",
		"mcpaging-trace v2 cores 1",
		"mcpaging-trace v1 cores x",
		"mcpaging-trace v1 cores 1 core 1 1 5",    // out-of-order core index
		"mcpaging-trace v1 cores 1 core 0 3 1 2",  // truncated payload
		"mcpaging-trace v1 cores 1 core 0 2 1 -5", // negative page
		"mcpaging-trace v1 cores 2 core 0 1 7",    // missing second core
		"mcpaging-trace v1 cores -3",              // bad core count
		"mcpaging-trace v1 cores 1 core 0 -1",     // bad length
		"mcpaging-trace v1 cores 1 kore 0 1 7",    // bad keyword
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d (%q) should fail", i, c)
		}
	}
}

func TestWrappedTokensAccepted(t *testing.T) {
	in := "mcpaging-trace\nv1\ncores\n1\ncore\n0\n4\n1\n2\n3\n4\n"
	rs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := core.RequestSet{{1, 2, 3, 4}}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("got %v, want %v", rs, want)
	}
}
