package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mcpaging/internal/core"
)

// ReadAddressTrace parses a raw memory-access trace into a request set:
// one access per line, "<core> <address>", where the address is decimal
// or 0x-prefixed hex. Addresses are mapped to pages by shifting right
// pageShift bits (12 for 4 KiB pages) and the resulting page numbers are
// renumbered onto dense IDs. Lines starting with '#' and blank lines are
// skipped. This is the bridge from externally collected traces (e.g.
// pin/valgrind-style logs) into the simulator.
func ReadAddressTrace(r io.Reader, pageShift uint) (core.RequestSet, error) {
	if pageShift > 48 {
		return nil, fmt.Errorf("trace: implausible page shift %d", pageShift)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var rs core.RequestSet
	pageIDs := make(map[uint64]core.PageID)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: line %d: want '<core> <address>', got %q", lineNo, line)
		}
		c, err := strconv.Atoi(fields[0])
		if err != nil || c < 0 || c > 1<<16 {
			return nil, fmt.Errorf("trace: line %d: bad core %q", lineNo, fields[0])
		}
		raw, base := fields[1], 10
		if strings.HasPrefix(raw, "0x") || strings.HasPrefix(raw, "0X") {
			raw, base = raw[2:], 16
		}
		addr, err := strconv.ParseUint(raw, base, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[1])
		}
		page := addr >> pageShift
		id, ok := pageIDs[page]
		if !ok {
			if len(pageIDs) >= 1<<30 {
				return nil, fmt.Errorf("trace: too many distinct pages")
			}
			id = core.PageID(len(pageIDs))
			pageIDs[page] = id
		}
		for c >= len(rs) {
			rs = append(rs, core.Sequence{})
		}
		rs[c] = append(rs[c], id)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("trace: empty address trace")
	}
	return rs, nil
}
