// Package trace serialises multicore request sets to a simple text
// format so workloads can be generated once (cmd/mcgen) and replayed
// across tools (cmd/mcsim, cmd/mcopt).
//
// Format (whitespace-separated tokens):
//
//	mcpaging-trace v1
//	cores <p>
//	core <index> <length>
//	<length page IDs ...>
//	... one block per core ...
//
// Lines are a presentation detail; the reader is token-based, so traces
// can be wrapped at any width.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"mcpaging/internal/core"
)

const (
	magic   = "mcpaging-trace"
	version = "v1"
)

// Write serialises a request set.
func Write(w io.Writer, r core.RequestSet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %s\n", magic, version)
	fmt.Fprintf(bw, "cores %d\n", r.NumCores())
	for j, seq := range r {
		fmt.Fprintf(bw, "core %d %d\n", j, len(seq))
		for i, pg := range seq {
			if i > 0 {
				if i%16 == 0 {
					bw.WriteByte('\n')
				} else {
					bw.WriteByte(' ')
				}
			}
			bw.WriteString(strconv.FormatInt(int64(pg), 10))
		}
		if len(seq) > 0 {
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// Read parses a request set written by Write.
func Read(r io.Reader) (core.RequestSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	sc.Split(bufio.ScanWords)
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}
	nextInt := func() (int, error) {
		tok, err := next()
		if err != nil {
			return 0, err
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return 0, fmt.Errorf("trace: bad integer %q", tok)
		}
		return v, nil
	}

	if tok, err := next(); err != nil || tok != magic {
		return nil, fmt.Errorf("trace: bad magic %q (err=%v)", tok, err)
	}
	if tok, err := next(); err != nil || tok != version {
		return nil, fmt.Errorf("trace: unsupported version %q (err=%v)", tok, err)
	}
	if tok, err := next(); err != nil || tok != "cores" {
		return nil, fmt.Errorf("trace: expected 'cores', got %q (err=%v)", tok, err)
	}
	p, err := nextInt()
	if err != nil {
		return nil, err
	}
	if p < 1 || p > 1<<20 {
		return nil, fmt.Errorf("trace: implausible core count %d", p)
	}
	rs := make(core.RequestSet, p)
	for j := 0; j < p; j++ {
		if tok, err := next(); err != nil || tok != "core" {
			return nil, fmt.Errorf("trace: expected 'core', got %q (err=%v)", tok, err)
		}
		idx, err := nextInt()
		if err != nil {
			return nil, err
		}
		if idx != j {
			return nil, fmt.Errorf("trace: core blocks out of order: got %d, want %d", idx, j)
		}
		n, err := nextInt()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<28 {
			return nil, fmt.Errorf("trace: implausible sequence length %d", n)
		}
		seq := make(core.Sequence, n)
		for i := 0; i < n; i++ {
			v, err := nextInt()
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: negative page %d", v)
			}
			seq[i] = core.PageID(v)
		}
		rs[j] = seq
	}
	return rs, nil
}
