// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, confidence intervals, and linear
// regression for growth-rate checks (several of the paper's bounds are
// claims about how a ratio scales with n, τ, or K).
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// under the normal approximation (1.96·σ/√n). Zero for n < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci [min,max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f]", s.Mean, s.CI95(), s.Min, s.Max)
}

// GeoMean returns the geometric mean of a positive sample (NaN if any
// value is non-positive or the sample is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Fit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits a least-squares line to the points. It panics if the
// slices differ in length and returns a zero Fit for fewer than two
// points or degenerate x.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: mismatched sample lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// Ratio returns a/b as float64, or NaN when b is zero — the pervasive
// "competitive ratio" helper.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}

// BootstrapCI is a percentile-bootstrap confidence interval for the
// mean of a sample.
type BootstrapCI struct {
	Lo, Hi float64
}

// defaultBootstrapRounds balances CI stability against prover
// throughput: 1000 resamples put the percentile estimates well inside
// the jitter of the verdict thresholds.
const defaultBootstrapRounds = 1000

// BootstrapMeanCI estimates a two-sided confidence interval for the
// mean of xs by seeded percentile bootstrap: rounds resamples with
// replacement (0 = a 1000-round default), conf the coverage (e.g. 0.95).
// The estimate is deterministic in (xs, rounds, conf, seed). For an
// empty sample both bounds are NaN; a single observation collapses the
// interval to that value.
func BootstrapMeanCI(xs []float64, rounds int, conf float64, seed int64) BootstrapCI {
	n := len(xs)
	if n == 0 {
		return BootstrapCI{Lo: math.NaN(), Hi: math.NaN()}
	}
	if rounds <= 0 {
		rounds = defaultBootstrapRounds
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, rounds)
	for r := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[rng.Intn(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	lo := int(alpha * float64(rounds))
	hi := int((1 - alpha) * float64(rounds))
	if hi >= rounds {
		hi = rounds - 1
	}
	return BootstrapCI{Lo: means[lo], Hi: means[hi]}
}

// SignTest is the one-sided exact sign test: given wins successes and
// losses failures of a paired comparison (ties excluded), it returns
// the probability of observing at least wins successes in wins+losses
// fair coin flips — the p-value against the null "the comparison is a
// toss-up" in favor of "wins dominate". With no informative pairs the
// test is vacuous and the p-value is 1.
func SignTest(wins, losses int) float64 {
	if wins < 0 || losses < 0 {
		panic("stats: negative counts in SignTest")
	}
	n := wins + losses
	if n == 0 {
		return 1
	}
	// P[X >= wins], X ~ Binomial(n, 1/2), via log-space terms so n in
	// the thousands cannot overflow.
	logHalfN := -float64(n) * math.Ln2
	var p float64
	for k := wins; k <= n; k++ {
		p += math.Exp(logChoose(n, k) + logHalfN)
	}
	if p > 1 {
		p = 1
	}
	return p
}

// logChoose returns log(n choose k) via lgamma.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
