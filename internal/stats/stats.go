// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, confidence intervals, and linear
// regression for growth-rate checks (several of the paper's bounds are
// claims about how a ratio scales with n, τ, or K).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// under the normal approximation (1.96·σ/√n). Zero for n < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci [min,max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f]", s.Mean, s.CI95(), s.Min, s.Max)
}

// GeoMean returns the geometric mean of a positive sample (NaN if any
// value is non-positive or the sample is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Fit is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits a least-squares line to the points. It panics if the
// slices differ in length and returns a zero Fit for fewer than two
// points or degenerate x.
func LinearFit(xs, ys []float64) Fit {
	if len(xs) != len(ys) {
		panic("stats: mismatched sample lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// Ratio returns a/b as float64, or NaN when b is zero — the pervasive
// "competitive ratio" helper.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}
