package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.StdDev, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.CI95() != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); !almost(g, 4, 1e-12) {
		t.Fatalf("geomean = %v", g)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Fatal("degenerate geomean should be NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 3, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitFlat(t *testing.T) {
	f := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("flat fit = %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{2, 2}, []float64{1, 3}); f.Slope != 0 {
		t.Fatalf("vertical data should give zero fit, got %+v", f)
	}
	if f := LinearFit([]float64{1}, []float64{2}); f != (Fit{}) {
		t.Fatalf("single point should give zero fit, got %+v", f)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	LinearFit([]float64{1, 2}, []float64{1})
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("division by zero should be NaN")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := Summarize(mk(10))
	large := Summarize(mk(1000))
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI should shrink with n: %v vs %v", large.CI95(), small.CI95())
	}
}
