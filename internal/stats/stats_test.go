package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.StdDev, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.CI95() != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); !almost(g, 4, 1e-12) {
		t.Fatalf("geomean = %v", g)
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Fatal("degenerate geomean should be NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := LinearFit(xs, ys)
	if !almost(f.Slope, 2, 1e-12) || !almost(f.Intercept, 3, 1e-12) || !almost(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitFlat(t *testing.T) {
	f := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if f.Slope != 0 || f.R2 != 1 {
		t.Fatalf("flat fit = %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{2, 2}, []float64{1, 3}); f.Slope != 0 {
		t.Fatalf("vertical data should give zero fit, got %+v", f)
	}
	if f := LinearFit([]float64{1}, []float64{2}); f != (Fit{}) {
		t.Fatalf("single point should give zero fit, got %+v", f)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	LinearFit([]float64{1, 2}, []float64{1})
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("division by zero should be NaN")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := Summarize(mk(10))
	large := Summarize(mk(1000))
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI should shrink with n: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10) // mean 4.5
	}
	ci := BootstrapMeanCI(xs, 500, 0.95, 1)
	if !(ci.Lo <= 4.5 && 4.5 <= ci.Hi) {
		t.Fatalf("CI [%v, %v] excludes the true mean", ci.Lo, ci.Hi)
	}
	if ci.Hi-ci.Lo > 2 {
		t.Fatalf("CI [%v, %v] implausibly wide for n=200", ci.Lo, ci.Hi)
	}
	if again := BootstrapMeanCI(xs, 500, 0.95, 1); again != ci {
		t.Fatal("bootstrap is not deterministic in the seed")
	}
	if other := BootstrapMeanCI(xs, 500, 0.95, 2); other == ci {
		t.Fatal("distinct seeds produced identical resamples")
	}
	one := BootstrapMeanCI([]float64{3}, 100, 0.95, 1)
	if one.Lo != 3 || one.Hi != 3 {
		t.Fatalf("single-observation CI = %+v, want [3,3]", one)
	}
	empty := BootstrapMeanCI(nil, 100, 0.95, 1)
	if !math.IsNaN(empty.Lo) || !math.IsNaN(empty.Hi) {
		t.Fatalf("empty-sample CI = %+v, want NaNs", empty)
	}
}

func TestSignTest(t *testing.T) {
	if p := SignTest(0, 0); p != 1 {
		t.Fatalf("vacuous test p = %v, want 1", p)
	}
	// Exact small case: P[X >= 9 | n=10] = (10+1)/1024.
	if p, want := SignTest(9, 1), 11.0/1024; math.Abs(p-want) > 1e-12 {
		t.Fatalf("SignTest(9,1) = %v, want %v", p, want)
	}
	// Symmetric case is exactly the upper half plus the middle term.
	if p := SignTest(5, 5); p < 0.5 || p > 0.75 {
		t.Fatalf("SignTest(5,5) = %v, want in (0.5, 0.75)", p)
	}
	// Monotone: more wins at fixed n means smaller p.
	if SignTest(8, 2) >= SignTest(6, 4) {
		t.Fatal("p-value not monotone in wins")
	}
	// Large n stays finite and tiny.
	if p := SignTest(900, 100); !(p > 0 && p < 1e-100) {
		t.Fatalf("SignTest(900,100) = %v, want tiny positive", p)
	}
}
