# mcpaging build targets. Everything is stdlib Go; no external tools are
# required beyond the Go toolchain.

GO ?= go

.PHONY: all build test vet fmt lint bench bench-baseline bench-parallel benchstat soak experiments cover cover-gate smoke serve fleet verify verify-quick verify-baseline clean

# Benchmarks the comparison targets track: the simulator serve paths and
# the batch harness, plus the root throughput benches.
BENCH_PATTERN ?= BenchmarkSim|BenchmarkSweepGrid
BENCH_PKGS ?= . ./internal/sim/ ./internal/sweep/
BENCH_COUNT ?= 5

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short mode skips the soak tests.
test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .
	@test -z "$$(gofmt -l .)" || (echo "gofmt needed" && exit 1)

# The repo's own analyzer suite (docs/lint.md) plus the stock checks.
lint:
	$(GO) run ./cmd/mcvet ./...
	$(GO) vet ./...
	@test -z "$$(gofmt -l .)" || (gofmt -l . && echo "gofmt needed" && exit 1)

bench:
	$(GO) test -run XXX -bench . -benchmem .

# Save the current tree's numbers as the baseline for `make benchstat`.
bench-baseline:
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) | tee bench_old.txt

# Re-measure and compare against the saved baseline (benchstat when
# installed, a plain diff of means otherwise).
benchstat:
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) | tee bench_new.txt
	./scripts/bench_compare.sh bench_old.txt bench_new.txt

# Sequential vs speculative engine on the sim serve benchmarks
# (benchstat when installed; PAR_WORKERS picks the engine column).
PAR_WORKERS ?= 4
bench-parallel:
	./scripts/bench_parallel.sh $(PAR_WORKERS)

soak:
	$(GO) test -run Soak -v .

# Full-size reproduction of every paper claim (EXPERIMENTS.md tables).
experiments:
	$(GO) run ./cmd/mcexp -parallel 8

smoke:
	./scripts/smoke.sh

# Statistical verification of the committed claim manifest
# (verify/claims.json; see docs/verify.md). verify-quick is the per-PR
# CI gate; verify is the full run the nightly workflow scales up.
verify:
	$(GO) run ./cmd/mcverify -workers 4 -v

verify-quick:
	$(GO) run ./cmd/mcverify -quick -workers 4 -v

# Refresh verify/baseline.json after intentionally changing claims or
# prover semantics (runs both quick and full modes).
verify-baseline:
	$(GO) run ./cmd/mcverify -update-baseline -workers 4 -v

# Run the simulation service locally (see docs/server.md for the API).
SERVE_ADDR ?= :8080
serve:
	$(GO) run ./cmd/mcservd -addr $(SERVE_ADDR)

# Run a local fleet: FLEET_WORKERS mcservd workers on random ports plus
# the mcfleet coordinator on FLEET_ADDR (see docs/fleet.md).
FLEET_ADDR ?= :9090
FLEET_WORKERS ?= 2
fleet:
	./scripts/fleet.sh $(FLEET_ADDR) $(FLEET_WORKERS)

# Short mode: the soak tests are excluded from coverage passes (run
# `make soak` for them); this matches the CI coverage gate.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# CI's coverage floor, runnable locally (raised from the 83.4% seed
# baseline when internal/verify landed).
cover-gate:
	./scripts/coverage_gate.sh 84.5

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_old.txt bench_new.txt
	rm -rf telemetry/ out/
