# mcpaging build targets. Everything is stdlib Go; no external tools are
# required beyond the Go toolchain.

GO ?= go

.PHONY: all build test vet fmt bench soak experiments cover smoke clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short mode skips the soak tests.
test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .
	@test -z "$$(gofmt -l .)" || (echo "gofmt needed" && exit 1)

bench:
	$(GO) test -run XXX -bench . -benchmem .

soak:
	$(GO) test -run Soak -v .

# Full-size reproduction of every paper claim (EXPERIMENTS.md tables).
experiments:
	$(GO) run ./cmd/mcexp -parallel 8

smoke:
	./scripts/smoke.sh

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
