package main

import (
	"reflect"
	"testing"
)

func TestCurveSamples(t *testing.T) {
	if got := curveSamples(32); !reflect.DeepEqual(got, []int{1, 8, 16, 32}) {
		t.Fatalf("got %v", got)
	}
	if got := curveSamples(2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("k=2: got %v", got)
	}
	if got := curveSamples(1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("k=1: got %v", got)
	}
}

func TestRate(t *testing.T) {
	if rate(5, 10) != 0.5 {
		t.Fatal("rate wrong")
	}
	if rate(5, 0) != 0 {
		t.Fatal("zero-length rate should be 0")
	}
}
