// Command mcstat analyses a trace: per-core lengths and working sets,
// LRU and OPT miss-curve samples, and the fault-optimal static partition
// for a given cache size — the profiling companion to mcsim.
//
// Usage:
//
//	mcstat -trace trace.txt -k 32
package main

import (
	"flag"
	"fmt"
	"os"

	"mcpaging/internal/mattson"
	"mcpaging/internal/metrics"
	"mcpaging/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace (required)")
		k         = flag.Int("k", 32, "cache size for curve samples and partition advice")
		optCurve  = flag.Bool("opt", false, "also compute Belady (OPT) curves (slower)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "mcstat: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	rs, err := trace.ReadAuto(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %s\ncores: %d, requests: %d, distinct pages: %d, disjoint: %v\n\n",
		*tracePath, rs.NumCores(), rs.TotalLen(), len(rs.Universe()), rs.Disjoint())

	samples := curveSamples(*k)
	headers := []string{"core", "length", "distinct", "ws_avg", "ws_max"}
	for _, s := range samples {
		headers = append(headers, fmt.Sprintf("lru@%d", s))
	}
	if *optCurve {
		for _, s := range samples {
			headers = append(headers, fmt.Sprintf("opt@%d", s))
		}
	}
	tbl := metrics.NewTable(fmt.Sprintf("per-core profile (working set over %d-request windows; miss rates at sampled cache sizes)", 4**k), headers...)
	for j, seq := range rs {
		wsAvg, wsMax := seq.WorkingSet(4 * *k)
		row := []interface{}{j, len(seq), len(seq.Pages()), wsAvg, wsMax}
		lru := mattson.LRUCurve(seq, *k)
		for _, s := range samples {
			row = append(row, rate(lru[s], len(seq)))
		}
		if *optCurve {
			opt := mattson.OPTCurveParallel(seq, *k, 0)
			for _, s := range samples {
				row = append(row, rate(opt[s], len(seq)))
			}
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}

	part, err := mattson.OptimalLRU(rs, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\noptimal static partition for K=%d (per-part LRU): %v, predicted faults %d (rate %.3f)\n",
		*k, part.Sizes, part.Faults, float64(part.Faults)/float64(rs.TotalLen()))
}

// curveSamples picks representative sizes 1, K/4, K/2, K (deduplicated,
// ascending).
func curveSamples(k int) []int {
	cand := []int{1, k / 4, k / 2, k}
	var out []int
	for _, c := range cand {
		if c < 1 {
			continue
		}
		if len(out) == 0 || c > out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

func rate(misses int64, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(misses) / float64(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcstat:", err)
	os.Exit(1)
}
