package main

import (
	"testing"
)

func TestBuildSyntheticKinds(t *testing.T) {
	for _, kind := range []string{"uniform", "zipf", "loop", "phased", "markov"} {
		rs, err := build(kind, 3, 100, 16, 1, 0, 16, 1, 10, 8, 4, 1.2, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if rs.NumCores() != 3 || rs.TotalLen() != 300 {
			t.Fatalf("%s: wrong shape", kind)
		}
	}
}

func TestBuildAdversarialKinds(t *testing.T) {
	cases := []struct {
		kind  string
		cores int
		k     int
	}{
		{"lemma1", 4, 16},
		{"lemma2", 4, 8},
		{"lemma4", 2, 4},
		{"theorem1", 2, 4},
	}
	for _, c := range cases {
		rs, err := build(c.kind, c.cores, 100, 16, 1, 0, c.k, 1, 10, 8, 4, 1.2, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if rs.NumCores() != c.cores {
			t.Fatalf("%s: %d cores", c.kind, rs.NumCores())
		}
		if !rs.Disjoint() {
			t.Fatalf("%s: not disjoint", c.kind)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := build("bogus", 2, 10, 4, 1, 0, 4, 1, 10, 8, 4, 1.2, 0.05); err == nil {
		t.Fatal("unknown kind should fail")
	}
}
