// Command mcgen generates synthetic multicore paging traces.
//
// Usage:
//
//	mcgen -kind zipf -cores 4 -length 10000 -pages 64 -seed 1 -o trace.txt
//	mcgen -kind lemma4 -cores 2 -k 4 -length 1000 -o adversarial.txt
//
// Kinds: uniform, zipf, loop, phased, markov (synthetic families), plus
// the adversarial constructions lemma1, lemma2, lemma4, theorem1.
package main

import (
	"flag"
	"fmt"
	"os"

	"mcpaging/internal/adversary"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/trace"
	"mcpaging/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "zipf", "workload kind: uniform|zipf|loop|phased|markov|lemma1|lemma2|lemma4|theorem1")
		cores    = flag.Int("cores", 4, "number of cores (p)")
		length   = flag.Int("length", 10000, "per-core sequence length")
		pages    = flag.Int("pages", 64, "distinct private pages per core")
		seed     = flag.Int64("seed", 1, "random seed")
		shared   = flag.Float64("shared", 0, "fraction of requests drawn from a shared pool")
		k        = flag.Int("k", 16, "cache size (adversarial kinds only)")
		tau      = flag.Int("tau", 1, "fetch delay (theorem1 only)")
		x        = flag.Int("x", 100, "distinct-period repetitions (theorem1 only)")
		out      = flag.String("o", "-", "output file ('-' = stdout)")
		binFmt   = flag.Bool("binary", false, "write the compact binary format instead of text")
		phases   = flag.Int("phases", 8, "phases (phased only)")
		wset     = flag.Int("wset", 0, "working-set size per phase (phased only; 0 = pages/4)")
		zipfS    = flag.Float64("zipf-s", 1.2, "zipf exponent (zipf only)")
		jumpProb = flag.Float64("jump", 0.05, "jump probability (markov only)")
	)
	flag.Parse()

	rs, err := build(*kind, *cores, *length, *pages, *seed, *shared, *k, *tau, *x, *phases, *wset, *zipfS, *jumpProb)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	writeFn := trace.Write
	if *binFmt {
		writeFn = trace.WriteBinary
	}
	if err := writeFn(w, rs); err != nil {
		fmt.Fprintln(os.Stderr, "mcgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mcgen: %d cores, %d requests, %d distinct pages, disjoint=%v\n",
		rs.NumCores(), rs.TotalLen(), len(rs.Universe()), rs.Disjoint())
}

func build(kind string, cores, length, pages int, seed int64, shared float64,
	k, tau, x, phases, wset int, zipfS, jump float64) (core.RequestSet, error) {
	switch kind {
	case "uniform", "zipf", "loop", "phased", "markov":
		return workload.Generate(workload.Spec{
			Cores: cores, Length: length, Pages: pages, Kind: workload.Kind(kind),
			Seed: seed, SharedFrac: shared, Phases: phases, WorkingSet: wset,
			ZipfS: zipfS, JumpProb: jump,
		})
	case "lemma1":
		sizes := policy.EvenSizes(k, cores)
		return adversary.Lemma1(sizes, length)
	case "lemma2":
		sizes := policy.EvenSizes(k, cores)
		return adversary.Lemma2(sizes, length)
	case "lemma4":
		return adversary.Lemma4(cores, k, length)
	case "theorem1":
		return adversary.Theorem1Round(cores, k, tau, x)
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}
