// mcvet runs the mcpaging lint suite (internal/analysis) over the
// packages matched by its arguments:
//
//	go run ./cmd/mcvet ./...
//
// Packages are analyzed whole-program: in-module dependencies of the
// named packages are loaded too, so interprocedural facts (blocking,
// clock reads, seed provenance, cancellation paths) flow across
// package boundaries; diagnostics are only reported for the packages
// the patterns named. mcvet prints one line per finding — and, with
// -json, writes the same findings as a machine-readable array for CI
// artifacts and problem matchers — and exits non-zero if any survive
// the //mcvet:ignore directives. See docs/lint.md for the analyzer
// catalogue, the annotation conventions and how to add an analyzer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mcpaging/internal/analysis"
)

// jsonFinding is the machine-readable shape of one diagnostic, stable
// for CI consumers (the GitHub Actions problem matcher parses the
// plain-text lines; the JSON artifact carries the same fields
// structured).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonPath := flag.String("json", "", "also write findings as a JSON array to this file ('-' for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mcvet [-list] [-json file] <packages>\n\nAnalyzers (see docs/lint.md):\n")
		for _, a := range analysis.DefaultSuite() {
			scope := "all packages"
			if a.Critical {
				scope = "determinism-critical packages"
			}
			fmt.Fprintf(os.Stderr, "  %-11s %s (%s)\n", a.Name, a.Doc, scope)
		}
	}
	flag.Parse()
	suite := analysis.DefaultSuite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcvet:", err)
		os.Exit(2)
	}
	diags := analysis.RunAll(suite, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if *jsonPath != "" {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		buf, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcvet:", err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mcvet:", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mcvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
