// mcvet runs the mcpaging lint suite (internal/analysis) over the
// packages matched by its arguments:
//
//	go run ./cmd/mcvet ./...
//
// It prints one line per finding and exits non-zero if any survive the
// //mcvet:ignore directives. See docs/lint.md for the analyzer
// catalogue, the annotation conventions and how to add an analyzer.
package main

import (
	"flag"
	"fmt"
	"os"

	"mcpaging/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mcvet [-list] <packages>\n\nAnalyzers (see docs/lint.md):\n")
		for _, a := range analysis.DefaultSuite() {
			scope := "all packages"
			if a.Critical {
				scope = "determinism-critical packages"
			}
			fmt.Fprintf(os.Stderr, "  %-11s %s (%s)\n", a.Name, a.Doc, scope)
		}
	}
	flag.Parse()
	suite := analysis.DefaultSuite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcvet:", err)
		os.Exit(2)
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunSuite(suite, pkg) {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "mcvet: %d finding(s)\n", bad)
		os.Exit(1)
	}
}
