package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcpaging/internal/verify"
)

// writeManifest writes a manifest with the given claims into dir and
// returns its path. Claims use the thm1 family, where S(LRU) <=
// sP[even](LRU) holds on every draw.
func writeManifest(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "claims.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const holdsManifest = `{"claims": [{
  "name": "cli-holds",
  "family": "thm1(p=2,k=4,tau=1,x=4)",
  "baseline": "S(LRU)", "challenger": "sP[even](LRU)", "relation": "<=",
  "mode": "universal", "k": 4, "tau": 1, "samples": 6, "seed": 31
}]}`

const refutedManifest = `{"claims": [{
  "name": "cli-refuted",
  "family": "thm1(p=2,k=4,tau=1,x=4)",
  "baseline": "sP[even](LRU)", "challenger": "S(LRU)", "relation": "<=",
  "mode": "universal", "k": 4, "tau": 1, "samples": 6, "seed": 32
}]}`

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunHoldsExitsZero(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir, holdsManifest)
	report := filepath.Join(dir, "verdicts.jsonl")
	code, stdout, stderr := runCLI(t,
		"-manifest", manifest, "-baseline", "", "-o", report)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "cli-holds") || !strings.Contains(stdout, "HOLDS") {
		t.Errorf("table missing verdict row:\n%s", stdout)
	}
	f, err := os.Open(report)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	verdicts, err := verify.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || verdicts[0].Status != verify.Holds {
		t.Errorf("report = %+v", verdicts)
	}
}

func TestRunRefutedExitsOne(t *testing.T) {
	manifest := writeManifest(t, t.TempDir(), refutedManifest)
	code, _, stderr := runCLI(t, "-manifest", manifest, "-baseline", "")
	if code != 1 {
		t.Fatalf("exit %d for a REFUTED claim, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "REFUTED") {
		t.Errorf("stderr does not name the refutation: %s", stderr)
	}
}

func TestRunBaselineRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir, holdsManifest)
	// A baseline that expects better than reality is a regression even
	// though nothing is REFUTED: the committed expectation is HOLDS with
	// rank above what an INCONCLUSIVE-grade run would produce, so here
	// we instead pin the baseline ABOVE by marking the claim refutable.
	baseline := filepath.Join(dir, "baseline.json")
	b := `{"claims": {"cli-holds": {"full": "HOLDS", "quick": "HOLDS"}}}`
	if err := os.WriteFile(baseline, []byte(b), 0o644); err != nil {
		t.Fatal(err)
	}
	// Matching baseline: exit 0.
	code, _, stderr := runCLI(t, "-manifest", manifest, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("exit %d with matching baseline (stderr: %s)", code, stderr)
	}
	// Now demand HOLDS of the refuted manifest under the same name.
	manifest2 := writeManifest(t, dir, strings.ReplaceAll(refutedManifest, "cli-refuted", "cli-holds"))
	code, _, stderr = runCLI(t, "-manifest", manifest2, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("exit %d for a baseline regression, want 1", code)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("stderr does not report the regression: %s", stderr)
	}
}

func TestRunMissingBaselineIsSkipped(t *testing.T) {
	manifest := writeManifest(t, t.TempDir(), holdsManifest)
	code, _, stderr := runCLI(t,
		"-manifest", manifest, "-baseline", "/does/not/exist.json")
	if code != 0 {
		t.Fatalf("exit %d with absent baseline, want 0 (stderr: %s)", code, stderr)
	}
}

func TestRunUpdateBaseline(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir, holdsManifest)
	baseline := filepath.Join(dir, "baseline.json")
	code, _, stderr := runCLI(t,
		"-manifest", manifest, "-baseline", baseline, "-update-baseline")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	b, err := verify.LoadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := b.Claims["cli-holds"]
	if !ok || e.Full != verify.Holds || e.Quick != verify.Holds {
		t.Errorf("baseline entry = %+v (present: %v)", e, ok)
	}
}

func TestRunUsageAndManifestErrorsExitTwo(t *testing.T) {
	if code, _, _ := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-manifest", "/does/not/exist.json"); code != 2 {
		t.Errorf("missing manifest: exit %d, want 2", code)
	}
	manifest := writeManifest(t, t.TempDir(), holdsManifest)
	if code, _, _ := runCLI(t, "-manifest", manifest, "-claims", "zzz"); code != 2 {
		t.Errorf("empty claim filter: exit %d, want 2", code)
	}
}

func TestRunListFamilies(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list-families")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, fam := range []string{"zipf", "thm1", "trace", "corr"} {
		if !strings.Contains(stdout, fam) {
			t.Errorf("family listing missing %s:\n%s", fam, stdout)
		}
	}
}

// TestCommittedManifestQuick proves the real committed manifest in
// quick mode against the committed baseline — the exact CI-gate
// invocation, run from the repo root.
func TestCommittedManifestQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("committed manifest is not short-mode work")
	}
	// The committed trace fixture path is repo-root-relative, so the
	// gate must run from the repo root, exactly as CI invokes it.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	code, stdout, stderr := runCLI(t,
		"-manifest", filepath.Join("verify", "claims.json"),
		"-baseline", filepath.Join("verify", "baseline.json"),
		"-quick", "-workers", "4")
	if code != 0 {
		t.Fatalf("committed manifest gate failed: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}
