// mcverify runs the statistical verification suite: every claim of a
// committed manifest (default verify/claims.json) is sampled over its
// workload family and judged HOLDS / REFUTED / INCONCLUSIVE, with
// sign-test p-values, bootstrap effect intervals and replayable
// counterexample seeds (see docs/verify.md).
//
//	mcverify                         full run, table to stdout
//	mcverify -quick                  bounded per-PR CI budget
//	mcverify -o verdicts.jsonl       machine-readable JSONL report
//	mcverify -update-baseline        refresh verify/baseline.json
//	mcverify -list-families          list workload families and exit
//
// Exit status: 0 when every claim matches expectations, 1 when any
// claim is REFUTED or regresses against the committed baseline
// (HOLDS > INCONCLUSIVE > REFUTED), 2 on usage or manifest errors —
// the CI gate keys off 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"mcpaging/internal/metrics"
	"mcpaging/internal/verify"
	"mcpaging/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	manifestPath := fs.String("manifest", "verify/claims.json", "claim manifest to prove")
	quick := fs.Bool("quick", false, "bounded sample counts (per-PR CI budget)")
	scale := fs.Float64("scale", 0, "multiply sample counts (nightly uses > 1)")
	out := fs.String("o", "", "write the JSONL verdict report to this file")
	baselinePath := fs.String("baseline", "verify/baseline.json", "verdict baseline to gate against (empty to skip)")
	updateBaseline := fs.Bool("update-baseline", false, "run quick and full modes and rewrite the baseline")
	parallel := fs.Int("parallel", 0, "speculative-engine workers per run (0 = sequential)")
	workers := fs.Int("workers", 4, "claims proved concurrently")
	claimFilter := fs.String("claims", "", "only prove claims whose name contains this substring")
	listFamilies := fs.Bool("list-families", false, "list the workload families and exit")
	verbose := fs.Bool("v", false, "print one line per finished claim")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFamilies {
		for _, f := range workload.ListFamilies() {
			fmt.Fprintf(stdout, "%-8s %s (params: %s)\n", f.Name, f.Desc, strings.Join(f.Params, ", "))
		}
		return 0
	}

	m, err := verify.LoadManifest(*manifestPath)
	if err != nil {
		fmt.Fprintln(stderr, "mcverify:", err)
		return 2
	}
	if *claimFilter != "" {
		var kept []verify.Claim
		for _, c := range m.Claims {
			if strings.Contains(c.Name, *claimFilter) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(stderr, "mcverify: no claim matches %q\n", *claimFilter)
			return 2
		}
		m.Claims = kept
	}

	var mu sync.Mutex
	progress := func(v verify.Verdict) {
		if !*verbose {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(stderr, "mcverify: %-32s %-12s p=%.4g effect=%.4g\n", v.Claim, v.Status, v.PValue, v.EffectMean)
	}
	opts := verify.Options{
		Quick:       *quick,
		SampleScale: *scale,
		Parallel:    *parallel,
		Workers:     *workers,
		Progress:    progress,
	}

	if *updateBaseline {
		return doUpdateBaseline(m, opts, *baselinePath, stdout, stderr)
	}

	verdicts, err := verify.NewProver(opts).ProveAll(m)
	if err != nil {
		fmt.Fprintln(stderr, "mcverify:", err)
		return 2
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "mcverify:", err)
			return 2
		}
		if err := verify.WriteReport(f, verdicts); err != nil {
			fmt.Fprintln(stderr, "mcverify:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "mcverify:", err)
			return 2
		}
	}
	printTable(stdout, verdicts)

	bad := false
	if verify.AnyRefuted(verdicts) {
		fmt.Fprintln(stderr, "mcverify: REFUTED claims present")
		bad = true
	}
	if *baselinePath != "" {
		if b, err := verify.LoadBaseline(*baselinePath); err == nil {
			for _, r := range b.Compare(verdicts, *quick) {
				fmt.Fprintln(stderr, "mcverify: confidence regression:", r)
				bad = true
			}
		} else if !os.IsNotExist(err) && !strings.Contains(err.Error(), "no such file") {
			fmt.Fprintln(stderr, "mcverify:", err)
			return 2
		}
	}
	if bad {
		return 1
	}
	return 0
}

// doUpdateBaseline proves the manifest in both modes and rewrites the
// baseline file with the exact expected statuses.
func doUpdateBaseline(m *verify.Manifest, opts verify.Options, path string, stdout, stderr io.Writer) int {
	b := &verify.Baseline{}
	for _, quick := range []bool{true, false} {
		o := opts
		o.Quick = quick
		verdicts, err := verify.NewProver(o).ProveAll(m)
		if err != nil {
			fmt.Fprintln(stderr, "mcverify:", err)
			return 2
		}
		b.Merge(verdicts, quick)
		if !quick {
			printTable(stdout, verdicts)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "mcverify:", err)
		return 2
	}
	if err := verify.WriteBaseline(f, b); err != nil {
		fmt.Fprintln(stderr, "mcverify:", err)
		return 2
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "mcverify:", err)
		return 2
	}
	fmt.Fprintln(stderr, "mcverify: baseline updated:", path)
	return 0
}

// printTable renders the human-readable verdict table.
func printTable(w io.Writer, verdicts []verify.Verdict) {
	t := metrics.NewTable("verification verdicts",
		"claim", "status", "samples", "wins/losses/ties", "p-value", "effect (95% CI)")
	for _, v := range verdicts {
		t.AddRow(v.Claim, string(v.Status), v.Samples,
			fmt.Sprintf("%d/%d/%d", v.Wins, v.Losses, v.Ties),
			fmt.Sprintf("%.4g", v.PValue),
			fmt.Sprintf("%.4g [%.4g, %.4g]", v.EffectMean, v.EffectLo, v.EffectHi))
	}
	t.Render(w)
}
