// Command mcsweep runs a strategy × K × τ grid over a trace in parallel
// and prints the results as an aligned table or CSV.
//
// Usage:
//
//	mcsweep -trace trace.txt -k 8,16,32 -tau 0,2,8 \
//	        -strategies 'S(LRU),sP[even](LRU),dP[ucp](LRU)' -csv
//	mcsweep -trace trace.txt -k 16 -tau 2 \
//	        -capacity 'step(to=75%,at=1024);step(to=50%,at=1024)' \
//	        -strategies 'S(LRU),eP[fair](LRU)'
//
// -capacity adds a K(t) schedule dimension to the grid (semicolon-
// separated, since schedule specs contain commas); each spec resolves
// against each K of the grid. Empty means fixed capacity only.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/sim"
	"mcpaging/internal/sweep"
	"mcpaging/internal/telemetry"
	"mcpaging/internal/trace"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "input trace (required)")
		kList      = flag.String("k", "16", "comma-separated cache sizes")
		tauList    = flag.String("tau", "0,4", "comma-separated fetch delays")
		specList   = flag.String("strategies", "S(LRU),sP[even](LRU),dP(LRU)", "comma-separated strategy specs")
		capList    = flag.String("capacity", "", "semicolon-separated K(t) schedule specs (grid dimension; empty = fixed capacity)")
		seed       = flag.Int64("seed", 1, "seed for RAND policies")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		parallel   = flag.Int("parallel", 0, "intra-run speculation workers per grid point (0 = sequential engine)")
		csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		heatmap    = flag.String("heatmap", "", "render a K×τ heatmap for this strategy spec instead of the flat table")
		metric     = flag.String("metric", "faults", "heatmap metric: faults|rate|jain|makespan")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telem      = flag.Bool("telemetry", false, "export windowed telemetry for every grid point under -telemetry-dir/k<K>_tau<τ>_<spec>/")
		telemDir   = flag.String("telemetry-dir", "telemetry", "telemetry export directory")
		telemWin   = flag.Int64("telemetry-window", 0, "telemetry window width in time steps (0 = default)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "mcsweep: -trace is required")
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	rs, err := trace.ReadAuto(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	ks, err := parseInts(*kList)
	if err != nil {
		fatal(err)
	}
	taus, err := parseInts(*tauList)
	if err != nil {
		fatal(err)
	}
	grid := sweep.Grid{
		R:          rs,
		Ks:         ks,
		Taus:       taus,
		Capacities: splitNonEmptyOn(*capList, ";"),
		Specs:      splitNonEmpty(*specList),
		Seed:       *seed,
		Workers:    *workers,
		Parallel:   *parallel,
	}
	if *telem {
		pages := len(rs.Universe())
		grid.Observe = func(pt sweep.Point) (sim.Observer, func(sim.Result) error) {
			name := fmt.Sprintf("k%d_tau%d_%s", pt.K, pt.Tau, telemetry.SanitizeLabel(pt.Spec))
			params := core.Params{K: pt.K, Tau: pt.Tau}
			if pt.Capacity != "" {
				// Grid.Validate parsed this pair already, but a trace file
				// can change underneath us; record the failure on the point
				// rather than silently labelling its telemetry fixed-capacity.
				sched, serr := capacity.ParseSchedule(pt.Capacity, pt.K)
				if serr != nil {
					return nil, func(sim.Result) error { return serr }
				}
				params.Capacity = sched
				name += "_" + telemetry.SanitizeLabel(pt.Capacity)
			}
			sess, err := telemetry.Start(telemetry.SessionConfig{
				Dir: filepath.Join(*telemDir, name),
				Collector: telemetry.Config{
					Cores:  rs.NumCores(),
					Params: params,
					Window: *telemWin,
				},
				Manifest: telemetry.Manifest{
					Tool:         "mcsweep",
					Source:       *tracePath,
					Strategy:     pt.Spec,
					StrategyName: pt.Strategy,
					Cores:        rs.NumCores(),
					Requests:     rs.TotalLen(),
					Pages:        pages,
					K:            pt.K,
					Tau:          pt.Tau,
					Capacity:     pt.Capacity,
					Seed:         *seed,
					Window:       *telemWin,
				},
			})
			if err != nil {
				return nil, func(sim.Result) error { return err }
			}
			return sess.Observer(), sess.Close
		}
	}
	pts, err := sweep.Run(grid)
	if err != nil {
		fatal(err)
	}
	title := fmt.Sprintf("sweep over %s (p=%d, n=%d)", *tracePath, rs.NumCores(), rs.TotalLen())
	var tbl *metrics.Table
	if *heatmap != "" {
		tbl, err = sweep.Heatmap(title, *heatmap, *metric, pts)
		if err != nil {
			fatal(err)
		}
	} else {
		tbl = sweep.Table(title, pts)
	}
	if *csv {
		err = tbl.CSV(os.Stdout)
	} else {
		err = tbl.Render(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsweep:", err)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, t := range splitNonEmpty(s) {
		v, err := strconv.Atoi(t)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", t)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitNonEmpty(s string) []string { return splitNonEmptyOn(s, ",") }

// splitNonEmptyOn splits on sep and drops empty items; capacity specs
// use ";" because the schedule grammar itself contains commas.
func splitNonEmptyOn(s, sep string) []string {
	var out []string
	for _, t := range strings.Split(s, sep) {
		t = strings.TrimSpace(t)
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}
