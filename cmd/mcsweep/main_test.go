package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 8, 16 ,32")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{8, 16, 32}) {
		t.Fatalf("got %v", got)
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Fatal("bad integer should fail")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty("a, ,b,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("got %v", got)
	}
	if splitNonEmpty("") != nil {
		t.Fatal("empty input should yield nil")
	}
}
