// Command mcexp runs the experiment suite that reproduces the paper's
// results (see DESIGN.md §4 and EXPERIMENTS.md). Each experiment
// instantiates a lemma/theorem's construction and reports a table whose
// shape must match the claim.
//
// Usage:
//
//	mcexp                 # run everything at full size
//	mcexp -exp E7         # one experiment
//	mcexp -quick          # reduced sizes (seconds instead of minutes)
//	mcexp -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mcpaging/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "", "run a single experiment (e.g. E7); empty = all")
		quick      = flag.Bool("quick", false, "reduced workload sizes")
		seed       = flag.Int64("seed", 1, "random seed")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		parallel   = flag.Int("parallel", 0, "run experiments concurrently on this many workers (0 = serial)")
		format     = flag.String("format", "text", "output format: text or md (markdown)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		telemDir   = flag.String("telemetry-dir", "", "when set, export windowed telemetry for every experiment simulation under this directory")
		telemWin   = flag.Int64("telemetry-window", 0, "telemetry window width in time steps (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	if *telemDir != "" {
		cfg = cfg.WithTelemetry(*telemDir, *telemWin)
	}
	if *exp == "" {
		if *format == "md" {
			for _, id := range experiments.IDs() {
				r, err := experiments.Get(id)
				if err != nil {
					fatal(err)
				}
				res, err := r(cfg)
				if err != nil {
					fatal(err)
				}
				if err := res.RenderMarkdown(os.Stdout); err != nil {
					fatal(err)
				}
			}
			return
		}
		var err error
		if *parallel > 0 {
			err = experiments.RunAllParallel(cfg, os.Stdout, *parallel)
		} else {
			err = experiments.RunAll(cfg, os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	r, err := experiments.Get(*exp)
	if err != nil {
		fatal(err)
	}
	res, err := r(cfg)
	if err != nil {
		fatal(err)
	}
	render := res.Render
	if *format == "md" {
		render = res.RenderMarkdown
	}
	if err := render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcexp:", err)
	os.Exit(1)
}
