// Command mcadv synthesises adversarial instances for a strategy:
// randomized hill climbing over tiny request sets, scored by the exact
// offline optimum, maximizing the strategy's online/OPT fault ratio.
//
// Usage:
//
//	mcadv -strategy 'S(LRU)' -p 2 -k 3 -tau 2
//	mcadv -strategy 'S(ARC)' -p 2 -k 4 -tau 1 -iters 500 -restarts 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcpaging/internal/advsearch"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/trace"
)

func main() {
	var (
		spec     = flag.String("strategy", "S(LRU)", "strategy spec to attack")
		p        = flag.Int("p", 2, "number of cores")
		k        = flag.Int("k", 3, "cache size")
		tau      = flag.Int("tau", 2, "fetch delay")
		maxLen   = flag.Int("maxlen", 6, "per-core sequence length cap")
		pages    = flag.Int("pages", 3, "per-core page alphabet")
		iters    = flag.Int("iters", 300, "hill-climbing steps per restart")
		restarts = flag.Int("restarts", 4, "random restarts")
		seed     = flag.Int64("seed", 1, "search seed")
		out      = flag.String("o", "", "also write the witness as a trace file")
	)
	flag.Parse()

	// sP[opt] derives its partition from the workload; the search
	// rebuilds strategies without seeing the candidate, so it cannot be
	// attacked meaningfully here.
	if strings.HasPrefix(*spec, "sP[opt]") {
		fatal(fmt.Errorf("sP[opt] is workload-dependent and not supported by the synthesiser"))
	}
	dummy := make(core.RequestSet, *p)
	build := func() sim.Strategy {
		st, err := strategyspec.Build(*spec, dummy, *k, *seed)
		if err != nil {
			fatal(err)
		}
		return st
	}
	// Probe once for spec errors before the search burns time.
	if _, err := strategyspec.Build(*spec, dummy, *k, *seed); err != nil {
		fatal(err)
	}

	found, err := advsearch.Search(advsearch.Config{
		Build: build,
		P:     *p, K: *k, Tau: *tau,
		MaxLen: *maxLen, PagesPerCore: *pages,
		Iters: *iters, Restarts: *restarts, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("strategy:  %s\n", *spec)
	fmt.Printf("ratio:     %.4f  (online %d vs offline optimum %d)\n", found.Ratio, found.Online, found.Opt)
	fmt.Printf("evals:     %d DP evaluations\n", found.Evals)
	fmt.Printf("witness:   %v  (K=%d, tau=%d)\n", found.R, *k, *tau)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.Write(f, found.R); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcadv:", err)
	os.Exit(1)
}
