// Command mcfleet coordinates a fleet of mcservd workers: it routes
// jobs and sweep cells by their content-addressed hash over a
// consistent-hash ring (so the workers' result caches compose into one
// distributed cache), probes worker health, fails cells over when a
// worker dies mid-sweep, and applies per-tenant admission control.
//
// Usage:
//
//	mcfleet -addr :9090 -worker http://127.0.0.1:8081 -worker http://127.0.0.1:8082
//
// Endpoints (the job/sweep API is wire-compatible with mcservd, so
// clients switch between one worker and a fleet by changing the URL):
//
//	POST /v1/jobs     route one job to its ring owner (JSON in, JSON out)
//	POST /v1/sweep    fan a K×τ×strategy grid across the fleet (JSONL out,
//	                  canonical grid order, identical to a single node)
//	GET  /v1/workers  fleet membership, health, latency weights
//	GET  /strategies  strategy catalogue (proxied from a healthy worker)
//	GET  /metrics     Prometheus text: mcfleet_* counters + per-worker gauges
//	GET  /healthz     liveness
//	GET  /readyz      readiness (503 while draining)
//
// See docs/fleet.md for the routing, failover, and quota semantics. On
// SIGINT or SIGTERM the coordinator stops admitting work, lets in-flight
// requests finish (up to -drain-timeout), and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mcpaging/internal/fleet"
)

// workerList collects repeated -worker flags.
type workerList []string

func (w *workerList) String() string { return strings.Join(*w, ",") }

func (w *workerList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSuffix(strings.TrimSpace(part), "/")
		if part == "" {
			continue
		}
		if !strings.HasPrefix(part, "http://") && !strings.HasPrefix(part, "https://") {
			part = "http://" + part
		}
		*w = append(*w, part)
	}
	return nil
}

func main() {
	var workers workerList
	flag.Var(&workers, "worker", "worker base URL (repeatable, or comma-separated)")
	var (
		addr           = flag.String("addr", ":9090", "listen address (host:port; port 0 picks a free port)")
		addrFile       = flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
		replicas       = flag.Int("replicas", 64, "virtual ring points per worker")
		workerInflight = flag.Int("worker-inflight", 0, "max cells in flight per worker (0 = 4)")
		maxInflight    = flag.Int("max-inflight", 0, "max cells in flight fleet-wide (0 = worker-inflight x workers)")
		retryRounds    = flag.Int("retry-rounds", 0, "failover rotations per cell before giving up (0 = 3)")
		probeInterval  = flag.Duration("probe-interval", 0, "/readyz probe period (0 = 2s)")
		quotaRate      = flag.Float64("quota-rate", 0, "per-tenant sustained budget in cells/sec (0 = 64, negative = unlimited)")
		quotaBurst     = flag.Float64("quota-burst", 0, "per-tenant burst budget in cells (0 = 4x rate)")
		shedInflight   = flag.Int("shed-inflight", 0, "shed new work above this many in-flight cells (0 = 4x max-inflight)")
		maxRequests    = flag.Int("max-requests", 0, "per-job total request budget (0 = 8M)")
		maxBody        = flag.Int64("max-body", 0, "request body limit in bytes (0 = 64MiB)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight requests")
	)
	flag.Parse()

	if len(workers) == 0 {
		fatal(fmt.Errorf("at least one -worker is required"))
	}

	clients := make([]*fleet.Client, len(workers))
	for i, u := range workers {
		// Per-worker jitter seeds keep backoff decorrelated across the
		// fleet without reaching for a global RNG.
		clients[i] = fleet.NewClient(u, nil, nil, fleet.Backoff{}, int64(i+1))
	}
	reg, err := fleet.NewRegistry(clients, *replicas, fleet.RegistryConfig{ProbeInterval: *probeInterval}, nil)
	if err != nil {
		fatal(err)
	}
	disp := fleet.NewDispatcher(reg, fleet.DispatcherConfig{
		MaxInflight:    *maxInflight,
		WorkerInflight: *workerInflight,
		RetryRounds:    *retryRounds,
		MaxRequests:    *maxRequests,
	}, nil, nil)
	gw := fleet.NewGateway(disp, fleet.GatewayConfig{
		QuotaRate:    *quotaRate,
		QuotaBurst:   *quotaBurst,
		ShedInflight: *shedInflight,
		MaxBody:      *maxBody,
	}, nil, nil)

	// One synchronous probe round before serving, so the first request
	// already sees real health instead of optimistic defaults. The probe
	// loop runs under the process root context: reg.Close (below)
	// cancels any round still in flight at drain time.
	reg.ProbeAll(context.Background())
	reg.Start(context.Background())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "mcfleet: listening on %s, %d workers\n", bound, len(workers))

	httpSrv := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "mcfleet: %v, draining\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Mirror mcservd's drain: stop accepting connections, wait for
	// in-flight handlers up to the budget, then stop admission and the
	// probe loop.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mcfleet: shutdown: %v\n", err)
	}
	gw.Drain()
	reg.Close()
	fmt.Fprintln(os.Stderr, "mcfleet: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcfleet:", err)
	os.Exit(1)
}
