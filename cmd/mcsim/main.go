// Command mcsim replays a trace against a cache-management strategy
// under the multicore paging model and reports per-core and aggregate
// statistics.
//
// Usage:
//
//	mcsim -trace trace.txt -k 16 -tau 4 -strategy 'S(LRU)'
//	mcsim -trace trace.txt -k 16 -tau 4 -strategy 'sP[even](LRU)'
//	mcsim -trace trace.txt -k 16 -tau 4 -strategy 'sP[opt](LRU)'
//	mcsim -trace trace.txt -k 16 -tau 4 -strategy 'dP[ucp](ARC)'
//	mcsim -trace trace.txt -k 16 -tau 4 -all
//	mcsim -trace trace.txt -k 16 -tau 4 -strategy 'S(LRU)' -telemetry -telemetry-dir out/
//
// Strategy syntax: partition family × eviction policy. Families:
// S(<policy>) shared; sP[even](<policy>) evenly partitioned;
// sP[opt](<policy>) offline-optimal static partition (LRU or FITF
// curves); dP[<controller>](<policy>) dynamic partition, where the
// controller is the Lemma 3 global-LRU donor rule (dP or
// dP[lru-global]), the fairness-oriented FairShare rule (dP[fair]), or
// utility-based partitioning (dP[ucp]); eP[<controller>](<policy>)
// elastic partition — the same controllers re-deriving quotas under a
// time-varying capacity schedule (see -capacity). Every dynamic
// controller composes with every policy: LRU FIFO CLOCK LFU MRU MARK
// RMARK RAND FITF ARC SLRU LRU2 TINYLFU (plus FWF in the shared
// family). -list-strategies prints the full registry.
//
// Capacity schedule syntax (-capacity, resolved against -k):
//
//	fixed                                   constant K (the default)
//	step(to=8,at=1024)                      one-shot resize at time `at`
//	step(to=50%,at=1024)                    targets may be percentages of K
//	ramp(to=8,end=4096)                     linear drift toward `to`
//	periodic(lo=8,period=2048,duty=0.5)     square-wave shrink storms
//	trace(path=sched.txt)                   explicit "time k" plateau file
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/telemetry"
	"mcpaging/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace (required)")
		k         = flag.Int("k", 16, "shared cache size K")
		tau       = flag.Int("tau", 4, "fetch delay τ")
		capSpec   = flag.String("capacity", "", "K(t) capacity schedule spec (see doc comment; empty = fixed K)")
		strat     = flag.String("strategy", "S(LRU)", "strategy spec (see doc comment)")
		all       = flag.Bool("all", false, "run a standard portfolio of strategies")
		seed      = flag.Int64("seed", 1, "seed for RAND policies")
		perCore   = flag.Bool("per-core", false, "print per-core breakdown")
		events    = flag.String("events", "", "write a CSV of every service event to this file (single-strategy runs)")
		addrShift = flag.Int("addr-shift", -1, "treat the input as a raw address trace ('<core> <addr>' lines) with this page shift (e.g. 12); -1 = normal trace format")
		parallel  = flag.Int("parallel", 0, "intra-run speculation workers (0 = sequential engine; falls back automatically when the trace is ineligible)")
		telem     = flag.Bool("telemetry", false, "collect windowed per-core telemetry and export it under -telemetry-dir")
		telemDir  = flag.String("telemetry-dir", "telemetry", "telemetry export directory (per-strategy subdirectories with -all)")
		telemWin  = flag.Int64("telemetry-window", 0, "telemetry window width in time steps (0 = default)")
		listStrat = flag.Bool("list-strategies", false, "list every buildable strategy spec and exit")
	)
	flag.Parse()
	if *listStrat {
		tbl := metrics.NewTable("strategies", "spec", "family", "policy", "description")
		for _, c := range strategyspec.List() {
			tbl.AddRow(c.Spec, c.Family, c.Policy, c.Desc)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "mcsim: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	var rs core.RequestSet
	if *addrShift >= 0 {
		rs, err = trace.ReadAddressTrace(f, uint(*addrShift))
	} else {
		rs, err = trace.ReadAuto(f)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	in := core.Instance{R: rs, P: core.Params{K: *k, Tau: *tau}}
	if *capSpec != "" {
		sched, err := capacity.ParseSchedule(*capSpec, *k)
		if err != nil {
			fatal(err)
		}
		in.P.Capacity = sched
	}

	specs := []string{*strat}
	if *all {
		specs = strategyspec.Portfolio()
	}
	title := fmt.Sprintf("trace=%s p=%d n=%d K=%d τ=%d", *tracePath, rs.NumCores(), rs.TotalLen(), *k, *tau)
	if *capSpec != "" {
		title += " capacity=" + *capSpec
	}
	tbl := metrics.NewTable(title,
		"strategy", "faults", "fault_rate", "jain", "makespan")
	for _, spec := range specs {
		st, err := strategyspec.Build(spec, rs, *k, *seed)
		if err != nil {
			fatal(err)
		}
		var obs sim.Observer
		var evFile *os.File
		if *events != "" && len(specs) == 1 {
			evFile, err = os.Create(*events)
			if err != nil {
				fatal(err)
			}
			w := bufio.NewWriter(evFile)
			defer func() { w.Flush(); evFile.Close() }()
			if *capSpec != "" {
				// Elastic runs carry two extra columns; fixed-capacity
				// output stays byte-identical to earlier versions.
				fmt.Fprintln(w, "time,core,index,page,fault,join,tick,victim,capacity,k")
				obs = func(e sim.Event) {
					fmt.Fprintf(w, "%d,%d,%d,%d,%v,%v,%v,%d,%v,%d\n",
						e.Time, e.Core, e.Index, e.Page, e.Fault, e.Join, e.Tick, e.Victim, e.Capacity, e.K)
				}
			} else {
				fmt.Fprintln(w, "time,core,index,page,fault,join,tick,victim")
				obs = func(e sim.Event) {
					fmt.Fprintf(w, "%d,%d,%d,%d,%v,%v,%v,%d\n",
						e.Time, e.Core, e.Index, e.Page, e.Fault, e.Join, e.Tick, e.Victim)
				}
			}
		}
		var sess *telemetry.Session
		if *telem {
			dir := *telemDir
			if len(specs) > 1 {
				dir = filepath.Join(dir, telemetry.SanitizeLabel(spec))
			}
			sess, err = telemetry.Start(telemetry.SessionConfig{
				Dir: dir,
				Collector: telemetry.Config{
					Cores:  rs.NumCores(),
					Params: in.P,
					Window: *telemWin,
				},
				CaptureEvents: true,
				Manifest: telemetry.Manifest{
					Tool:         "mcsim",
					Source:       *tracePath,
					Strategy:     spec,
					StrategyName: st.Name(),
					Cores:        rs.NumCores(),
					Requests:     rs.TotalLen(),
					Pages:        len(rs.Universe()),
					K:            *k,
					Tau:          *tau,
					Capacity:     *capSpec,
					Seed:         *seed,
					Window:       *telemWin,
				},
			})
			if err != nil {
				fatal(err)
			}
			obs = sim.MultiObserver(obs, sess.Observer())
		}
		res, err := sim.RunParallel(in, st, obs, *parallel)
		if err != nil {
			if sess != nil {
				sess.Abort()
			}
			fatal(err)
		}
		if sess != nil {
			if err := sess.Close(res); err != nil {
				fatal(err)
			}
		}
		tbl.AddRow(st.Name(), res.TotalFaults(),
			float64(res.TotalFaults())/float64(rs.TotalLen()),
			metrics.JainIndex(res.Faults), res.Makespan)
		if *perCore {
			sub := metrics.NewTable("  per-core ("+st.Name()+")", "core", "faults", "hits", "finish", "slowdown")
			slow := metrics.Slowdowns(rs, res)
			for j := range rs {
				sub.AddRow(j, res.Faults[j], res.Hits[j], res.Finish[j], slow[j])
			}
			defer sub.Render(os.Stdout)
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	os.Exit(1)
}
