// Command mcopt runs the paper's offline dynamic programs on a trace:
// Algorithm 1 (minimum total faults, Theorem 6) and Algorithm 2 (the
// PARTIAL-INDIVIDUAL-FAULTS decision, Theorem 7). Both are exponential
// in p and K — keep the instances small.
//
// Usage:
//
//	mcopt -trace tiny.txt -k 3 -tau 1                      # FTF optimum
//	mcopt -trace tiny.txt -k 3 -tau 1 -pif -t 20 -b 4,5    # PIF decision
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mcpaging/internal/core"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/trace"

	"mcpaging/internal/cache"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace (required)")
		k         = flag.Int("k", 3, "cache size K")
		tau       = flag.Int("tau", 1, "fetch delay τ")
		pif       = flag.Bool("pif", false, "decide PARTIAL-INDIVIDUAL-FAULTS instead of FTF")
		tFlag     = flag.Int64("t", 0, "PIF checkpoint time")
		bFlag     = flag.String("b", "", "PIF per-core fault bounds, comma separated")
		forcing   = flag.Bool("forcing", false, "FTF: allow voluntary evictions (Theorem 4 says this cannot help)")
		maxStates = flag.Int("max-states", 0, "abort beyond this many DP states (0 = default)")
	)
	flag.Parse()
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "mcopt: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	rs, err := trace.ReadAuto(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	in := core.Instance{R: rs, P: core.Params{K: *k, Tau: *tau}}
	opts := offline.Options{AllowForcing: *forcing, MaxStates: *maxStates}

	if *pif {
		bounds, err := parseBounds(*bFlag, rs.NumCores())
		if err != nil {
			fatal(err)
		}
		ans, st, err := offline.DecidePIF(offline.PIFInstance{Inst: in, T: *tFlag, Bounds: bounds}, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("PIF(T=%d, b=%v): %v  (states=%d, pairs=%d)\n", *tFlag, bounds, ans, st.States, st.Pairs)
		return
	}

	sol, err := offline.SolveFTF(in, opts)
	if err != nil {
		fatal(err)
	}
	online, err := sim.Run(in, policy.NewShared(func() cache.Policy { return cache.NewLRU() }), nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("OPT total faults: %d  (states=%d)\n", sol.Faults, sol.States)
	fmt.Printf("S(LRU) faults:    %d  (ratio %.3f)\n", online.TotalFaults(),
		float64(online.TotalFaults())/float64(sol.Faults))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcopt:", err)
	os.Exit(1)
}

func parseBounds(s string, p int) ([]int64, error) {
	if s == "" {
		return nil, fmt.Errorf("-b is required with -pif")
	}
	parts := strings.Split(s, ",")
	if len(parts) != p {
		return nil, fmt.Errorf("got %d bounds for %d cores", len(parts), p)
	}
	out := make([]int64, p)
	for i, t := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad bound %q", t)
		}
		out[i] = v
	}
	return out, nil
}
