package main

import "testing"

func TestParseBounds(t *testing.T) {
	got, err := parseBounds("3, 4,5", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestParseBoundsErrors(t *testing.T) {
	cases := []struct {
		s string
		p int
	}{
		{"", 2},
		{"1,2", 3},
		{"1,x", 2},
	}
	for _, c := range cases {
		if _, err := parseBounds(c.s, c.p); err == nil {
			t.Errorf("parseBounds(%q, %d) should fail", c.s, c.p)
		}
	}
}
