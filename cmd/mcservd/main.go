// Command mcservd serves the multicore paging simulator over HTTP: a
// job queue with bounded backpressure, a content-addressed result
// cache, a sweep endpoint that streams JSONL, and live Prometheus
// metrics.
//
// Usage:
//
//	mcservd -addr :8080
//	mcservd -addr 127.0.0.1:0 -addr-file /tmp/mcservd.addr
//
// Endpoints:
//
//	POST /v1/jobs     run one simulation job (JSON in, JSON out)
//	POST /v1/sweep    fan a K×τ×strategy grid across the pool (JSONL out)
//	GET  /strategies  list every buildable strategy spec
//	GET  /metrics     Prometheus text: server counters + last-run telemetry
//	GET  /healthz     liveness
//	GET  /readyz      readiness (503 while draining)
//
// See docs/server.md for the API schema and job lifecycle. On SIGINT or
// SIGTERM the daemon stops accepting connections, lets in-flight jobs
// finish (up to -drain-timeout), and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcpaging/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
		workers      = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "job queue depth (0 = 2x workers); full queue => 429")
		cacheEntries = flag.Int("cache-entries", 0, "result cache budget in entries (0 = default 4096, negative = disabled)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job execution budget (0 = 60s)")
		maxRequests  = flag.Int("max-requests", 0, "per-job total request budget (0 = 8M)")
		maxBody      = flag.Int64("max-body", 0, "request body limit in bytes (0 = 64MiB)")
		jobParallel  = flag.Int("job-parallel", 0, "intra-job speculation workers when the queue is idle (0 = off)")
		workerID     = flag.String("worker-id", "", "Fleet-Worker-ID echoed on every response (default: the bound address)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight jobs")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *workerID == "" {
		*workerID = bound
	}

	s := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		JobTimeout:   *jobTimeout,
		MaxRequests:  *maxRequests,
		MaxBody:      *maxBody,
		JobParallel:  *jobParallel,
		WorkerID:     *workerID,
	})
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "mcservd: listening on %s\n", bound)

	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "mcservd: %v, draining\n", sig)
	case err := <-errCh:
		fatal(err)
	}

	// Stop accepting connections and wait for in-flight handlers (each
	// blocked on its job) up to the drain budget, then stop the pool.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mcservd: shutdown: %v\n", err)
	}
	s.Drain()
	fmt.Fprintln(os.Stderr, "mcservd: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcservd:", err)
	os.Exit(1)
}
