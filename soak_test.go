package mcpaging_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mcpaging"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/sweep"
)

// TestSoakPortfolio drives the full strategy portfolio through larger
// workloads — including non-disjoint ones — and checks the global
// invariants on every run. Skipped under -short.
func TestSoakPortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(99))
	kinds := []mcpaging.WorkloadKind{
		mcpaging.WorkloadUniform, mcpaging.WorkloadZipf, mcpaging.WorkloadLoop,
		mcpaging.WorkloadPhased, mcpaging.WorkloadMarkov,
	}
	for _, kind := range kinds {
		for _, sharedFrac := range []float64{0, 0.3} {
			p := 2 + rng.Intn(7)
			k := p * (2 + rng.Intn(6))
			tau := rng.Intn(12)
			rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
				Cores: p, Length: 5000, Pages: 64, Kind: kind,
				SharedFrac: sharedFrac, Seed: rng.Int63(),
			})
			if err != nil {
				t.Fatal(err)
			}
			in := mcpaging.Instance{R: rs, P: mcpaging.Params{K: k, Tau: tau}}
			for _, spec := range strategyspec.Portfolio() {
				name := fmt.Sprintf("%s/shared=%.1f/%s", kind, sharedFrac, spec)
				st, err := strategyspec.Build(spec, rs, k, 1)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				res, err := mcpaging.Simulate(in, st)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if res.TotalFaults()+res.TotalHits() != int64(rs.TotalLen()) {
					t.Fatalf("%s: accounting broken", name)
				}
				for j := range rs {
					if res.Hits[j]+res.Faults[j] != int64(len(rs[j])) {
						t.Fatalf("%s: per-core accounting broken", name)
					}
					if res.Finish[j] != int64(len(rs[j]))+res.Faults[j]*int64(tau) {
						t.Fatalf("%s: finish identity broken", name)
					}
				}
				// The universe lower-bounds faults (cold misses).
				if res.TotalFaults() < int64(len(rs.Universe())) {
					t.Fatalf("%s: fewer faults than distinct pages", name)
				}
			}
		}
	}
}

// TestSoakSweep runs a moderately large grid through the parallel sweep
// harness. Skipped under -short.
func TestSoakSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 4, Length: 3000, Pages: 48, Kind: mcpaging.WorkloadPhased, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sweep.Run(sweep.Grid{
		R:     rs,
		Ks:    []int{8, 16, 32},
		Taus:  []int{0, 2, 8},
		Specs: strategyspec.Portfolio(),
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("%+v", p)
		}
	}
	// Sanity: more cache never hurts the *static* partitions on the same
	// τ for stack policies... not guaranteed in the multicore model (see
	// E17), so only check that fault counts are positive and bounded.
	for _, p := range pts {
		if p.Faults <= 0 || p.Faults > int64(rs.TotalLen()) {
			t.Fatalf("implausible faults: %+v", p)
		}
	}
}
