module mcpaging

go 1.22
