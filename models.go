package mcpaging

import (
	"mcpaging/internal/advsearch"
	"mcpaging/internal/hassidim"
	"mcpaging/internal/multiapp"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
)

// This file exposes the comparison models the paper positions itself
// against (Section 2) and the fairness machinery its conclusions propose
// (Section 6).

// MinTotalFaultsExact computes the exact offline minimum total faults
// under the model's logical-order semantics. It can be strictly below
// MinTotalFaults (the paper's Algorithm 1): the paper's successor rule
// forbids a fault from evicting a page requested by another core in the
// same timestep, which the model itself permits. See the documentation
// of the offline package for the worked counterexample.
func MinTotalFaultsExact(inst Instance, opts OfflineOptions) (FTFSolution, error) {
	return offline.SolveFTFSeq(inst, opts)
}

// MinUniformFaultBound returns the smallest uniform per-core fault
// budget b such that the instance can be served with every sequence at
// most b faults at time T (binary search over Algorithm 2) — the offline
// fairness yardstick.
func MinUniformFaultBound(inst Instance, t int64, opts OfflineOptions) (int64, error) {
	return offline.MinUniformBound(inst, t, opts)
}

// UCPPartition returns the utility-based dynamic partition (Qureshi &
// Patt's UCP adapted to this model): shadow-stack utility monitors per
// core, with the K cells reassigned greedily by marginal utility every
// window timesteps (0 = default window).
func UCPPartition(window int64) Strategy { return policy.NewUCP(window) }

// FairSharePartition returns the fairness-oriented online dynamic
// partition: every window timesteps one cache cell moves from the core
// with the fewest recent faults to the core with the most (0 = default
// window). It trades total faults for a flatter per-core distribution —
// the online counterpart of a PIF budget vector.
func FairSharePartition(window int64) Strategy { return policy.NewFairShare(window) }

// Hassidim's scheduler-empowered model (the paper's foil).
type (
	// HassidimOptions tunes the scheduler-model makespan search.
	HassidimOptions = hassidim.Options
	// HassidimStats reports its search effort.
	HassidimStats = hassidim.Stats
	// HassidimGreedyResult is the result of the never-delay greedy run.
	HassidimGreedyResult = hassidim.GreedyResult
)

// HassidimMinMakespan computes the optimal makespan in Hassidim's model,
// where the algorithm may delay ready cores (set Options.NoDelay to
// recover the paper's model). Exhaustive; small instances only.
func HassidimMinMakespan(inst Instance, opts HassidimOptions) (int64, HassidimStats, error) {
	return hassidim.MinMakespan(inst, opts)
}

// HassidimGreedyLRU runs the never-delay LRU schedule in Hassidim's
// model; on disjoint inputs it coincides exactly with SharedLRU under
// Simulate.
func HassidimGreedyLRU(inst Instance) (HassidimGreedyResult, error) {
	return hassidim.GreedyLRU(inst)
}

// The Barve–Grove–Vitter multiapplication model (fixed interleaving).
type (
	// MultiAppRequest is one tagged request of a fixed interleaving.
	MultiAppRequest = multiapp.Request
	// MultiAppResult holds per-application fault counts.
	MultiAppResult = multiapp.Result
)

// MultiAppInterleave flattens a request set into the round-robin
// interleaving used by the multiapplication model.
func MultiAppInterleave(r RequestSet) []MultiAppRequest { return multiapp.Interleave(r) }

// MultiAppLRU serves a fixed interleaving with one shared LRU cache; at
// τ=0 it coincides exactly with SharedLRU under Simulate.
func MultiAppLRU(reqs []MultiAppRequest, apps, k int) (MultiAppResult, error) {
	return multiapp.ServeLRU(reqs, apps, k)
}

// MultiAppOPT serves a fixed interleaving with Belady's algorithm — the
// fault-optimal policy of the multiapplication model and a lower bound
// on the paper model's τ=0 optimum.
func MultiAppOPT(reqs []MultiAppRequest, apps, k int) (MultiAppResult, error) {
	return multiapp.ServeOPT(reqs, apps, k)
}

// Adversary synthesis (the lower-bound method, mechanised).
type (
	// AdversarySearchConfig configures a synthesis run.
	AdversarySearchConfig = advsearch.Config
	// AdversaryFound is a synthesised worst-case witness.
	AdversaryFound = advsearch.Found
)

// SynthesizeAdversary hill-climbs over tiny instances, scored against
// the exact offline optimum, to find inputs on which the configured
// strategy performs worst. Deterministic given the config's seed.
func SynthesizeAdversary(cfg AdversarySearchConfig) (AdversaryFound, error) {
	return advsearch.Search(cfg)
}

// FaultBudgetFrontier returns the Pareto-minimal feasible per-core fault
// budget pairs at time T for a two-core instance (Algorithm 2 swept over
// budget space) — the exact fairness trade-off curve.
func FaultBudgetFrontier(inst Instance, t int64, opts OfflineOptions) ([][2]int64, error) {
	return offline.ParetoFrontier(inst, t, opts)
}
